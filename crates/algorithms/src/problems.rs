//! Problem specifications — the `Π`s this workspace solves and
//! derandomizes, as [`Problem`] implementations.
//!
//! All three labeling problems below accept **every** connected labeled
//! graph as an instance, so their decision problems `Δ_Π` are trivially
//! solvable and each problem is genuinely solvable (GRAN) as witnessed by
//! the Las-Vegas solvers in this crate.

use anonet_graph::{coloring, BitString, LabeledGraph};
use anonet_runtime::Problem;

/// Maximal independent set: outputs are `bool` (membership); valid iff the
/// chosen set is independent and maximal.
#[derive(Clone, Copy, Debug, Default)]
pub struct MisProblem;

impl Problem for MisProblem {
    type Input = ();
    type Output = bool;

    fn is_instance(&self, _instance: &LabeledGraph<()>) -> bool {
        true
    }

    fn is_valid_output(&self, instance: &LabeledGraph<()>, output: &[bool]) -> bool {
        let g = instance.graph();
        if output.len() != g.node_count() {
            return false;
        }
        // Independence.
        for e in g.edges() {
            if output[e.u.index()] && output[e.v.index()] {
                return false;
            }
        }
        // Maximality.
        for v in g.nodes() {
            if !output[v.index()] && !g.neighbors(v).iter().any(|u| output[u.index()]) {
                return false;
            }
        }
        true
    }
}

/// Greedy proper coloring: outputs are `u32` colors; valid iff adjacent
/// nodes differ **and** every node's color is at most its degree (the
/// greedy bound, so at most `Δ + 1` colors are used overall).
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyColoringProblem;

impl Problem for GreedyColoringProblem {
    type Input = ();
    type Output = u32;

    fn is_instance(&self, _instance: &LabeledGraph<()>) -> bool {
        true
    }

    fn is_valid_output(&self, instance: &LabeledGraph<()>, output: &[u32]) -> bool {
        let g = instance.graph();
        if output.len() != g.node_count() {
            return false;
        }
        for e in g.edges() {
            if output[e.u.index()] == output[e.v.index()] {
                return false;
            }
        }
        g.nodes().all(|v| (output[v.index()] as usize) <= g.degree(v))
    }
}

/// 2-hop coloring: outputs are [`BitString`] colors; valid iff nodes at
/// distance at most 2 receive distinct colors — the paper's central
/// problem, whose Las-Vegas solvability powers Theorem 1's decomposition.
#[derive(Clone, Copy, Debug, Default)]
pub struct TwoHopColoringProblem;

impl Problem for TwoHopColoringProblem {
    type Input = ();
    type Output = BitString;

    fn is_instance(&self, _instance: &LabeledGraph<()>) -> bool {
        true
    }

    fn is_valid_output(&self, instance: &LabeledGraph<()>, output: &[BitString]) -> bool {
        if output.len() != instance.node_count() {
            return false;
        }
        let Ok(colored) = instance.graph().with_labels(output.to_vec()) else {
            return false;
        };
        coloring::is_two_hop_coloring(&colored)
    }
}

/// Leader election as a labeling problem: outputs are `bool`
/// ("I am the leader"); valid iff **exactly one** node outputs `true`.
///
/// Unlike the problems above this one is *not* solvable on every
/// instance — on a non-prime network (nontrivial view quotient) every
/// fiber behaves identically, so no anonymous algorithm can break the
/// tie. The specification itself still accepts every connected graph;
/// solvability is what [`leader_election_solvable`](crate::leader)
/// decides.
#[derive(Clone, Copy, Debug, Default)]
pub struct LeaderOrNotProblem;

impl Problem for LeaderOrNotProblem {
    type Input = ();
    type Output = bool;

    fn is_instance(&self, _instance: &LabeledGraph<()>) -> bool {
        true
    }

    fn is_valid_output(&self, instance: &LabeledGraph<()>, output: &[bool]) -> bool {
        output.len() == instance.node_count() && output.iter().filter(|&&b| b).count() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::generators;

    #[test]
    fn mis_problem_validity() {
        let net = generators::cycle(4).unwrap().with_uniform_label(());
        assert!(MisProblem.is_instance(&net));
        assert!(MisProblem.is_valid_output(&net, &[true, false, true, false]));
        assert!(!MisProblem.is_valid_output(&net, &[true, true, false, false]));
        assert!(!MisProblem.is_valid_output(&net, &[false, false, false, false]));
        assert!(!MisProblem.is_valid_output(&net, &[true, false])); // wrong length
    }

    #[test]
    fn greedy_coloring_validity() {
        let net = generators::path(3).unwrap().with_uniform_label(());
        assert!(GreedyColoringProblem.is_valid_output(&net, &[0, 1, 0]));
        assert!(!GreedyColoringProblem.is_valid_output(&net, &[0, 0, 1])); // improper
                                                                           // Color 2 > degree 1 of an endpoint: violates the greedy bound.
        assert!(!GreedyColoringProblem.is_valid_output(&net, &[2, 1, 0]));
    }

    #[test]
    fn leader_or_not_requires_exactly_one() {
        let net = generators::cycle(4).unwrap().with_uniform_label(());
        assert!(LeaderOrNotProblem.is_instance(&net));
        assert!(LeaderOrNotProblem.is_valid_output(&net, &[false, true, false, false]));
        assert!(!LeaderOrNotProblem.is_valid_output(&net, &[false; 4]));
        assert!(!LeaderOrNotProblem.is_valid_output(&net, &[true, true, false, false]));
        assert!(!LeaderOrNotProblem.is_valid_output(&net, &[true])); // wrong length
    }

    #[test]
    fn two_hop_problem_validity() {
        let net = generators::cycle(6).unwrap().with_uniform_label(());
        let colors = |vals: &[u64]| -> Vec<BitString> {
            vals.iter().map(|&v| BitString::from_value(v, 4)).collect()
        };
        assert!(TwoHopColoringProblem.is_valid_output(&net, &colors(&[1, 2, 3, 1, 2, 3])));
        // Distance-2 clash: nodes 0 and 2.
        assert!(!TwoHopColoringProblem.is_valid_output(&net, &colors(&[1, 2, 1, 3, 2, 3])));
    }
}
