//! Deterministic distance-2 palette reduction: turns any 2-hop coloring
//! (e.g. the long-bitstring output of the Las-Vegas stage) into a 2-hop
//! coloring with **small integer colors** (at most `Δ² + 1`), with no
//! further randomness — the distributed counterpart of the greedy
//! compression used in radio-network frequency assignment.
//!
//! # Protocol
//!
//! The input colors totally order every 2-ball (that is what a 2-hop
//! coloring *is*), inducing a DAG over distance-≤2 pairs. Each round every
//! node broadcasts its `(input color, output)` state plus the last-seen
//! table of its neighbors' states — the same 2-hop relay channel as the
//! Las-Vegas colorer. A node commits once every node within 2 hops with a
//! *smaller* input color has committed (per its possibly-stale knowledge —
//! staleness only delays, never unblocks), picking the smallest integer
//! not yet used within its 2-ball. The global minimum is never blocked, so
//! the DAG drains deterministically.
//!
//! Self-exclusion needs no care here: a node's own (stale) table entry
//! carries its own input color, which is never *smaller* than itself, and
//! contributes no committed output while it matters.

use std::collections::BTreeSet;
use std::marker::PhantomData;

use anonet_graph::{coloring, distance, Label, LabeledGraph};
use anonet_runtime::{Actions, ObliviousAlgorithm, Problem};

/// A peer's state in messages: `(input color, committed output)`.
type Peer<C> = (C, Option<u32>);

/// Message: own state plus the relayed neighbor table (2-hop channel).
pub type ReductionMessage<C> = (Peer<C>, Vec<Peer<C>>);

/// Local state of [`TwoHopReduction`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReductionState<C> {
    input: C,
    output: Option<u32>,
    /// Last round's fresh neighbor states (relayed next round).
    table: Vec<Peer<C>>,
    /// Committed outputs seen anywhere in the 2-ball.
    taken: BTreeSet<u32>,
}

/// Deterministic distance-2 palette reduction on 2-hop colored inputs.
///
/// * **Input**: the node's color under a 2-hop coloring (any ordered
///   [`Label`] — bitstrings from the Las-Vegas stage qualify).
/// * **Output**: a `u32` color; the output labeling is again a 2-hop
///   coloring, using at most `Δ² + 1` colors.
#[derive(Clone, Copy, Debug, Default)]
pub struct TwoHopReduction<C> {
    _marker: PhantomData<fn() -> C>,
}

impl<C> TwoHopReduction<C> {
    /// Creates the algorithm.
    pub fn new() -> Self {
        TwoHopReduction { _marker: PhantomData }
    }
}

impl<C: Label> ObliviousAlgorithm for TwoHopReduction<C> {
    type Input = C;
    type Message = ReductionMessage<C>;
    type Output = u32;
    type State = ReductionState<C>;

    fn init(&self, input: &C, _degree: usize) -> Self::State {
        ReductionState {
            input: input.clone(),
            output: None,
            table: Vec::new(),
            taken: BTreeSet::new(),
        }
    }

    fn broadcast(&self, state: &Self::State) -> Option<Self::Message> {
        Some(((state.input.clone(), state.output), state.table.clone()))
    }

    fn step(
        &self,
        mut state: Self::State,
        round: usize,
        received: &[Self::Message],
        _bit: bool,
        actions: &mut Actions<u32>,
    ) -> Self::State {
        // Collect committed outputs and check for smaller-colored
        // uncommitted peers across the (stale) 2-ball picture.
        let mut blocked = round == 1; // tables warm up in round 1
        for (peer, table) in received {
            for (color, output) in std::iter::once(peer).chain(table.iter()) {
                match output {
                    Some(c) => {
                        state.taken.insert(*c);
                    }
                    None => {
                        if *color < state.input {
                            blocked = true;
                        }
                    }
                }
            }
        }

        if state.output.is_none() && !blocked {
            let color = (0u32..).find(|c| !state.taken.contains(c)).expect("colors are unbounded");
            state.output = Some(color);
            actions.output(color);
        }

        // Refresh the relay table.
        state.table = received.iter().map(|(peer, _)| peer.clone()).collect();
        state.table.sort();

        // Halt once the whole (visible) 2-ball has committed.
        if state.output.is_some() {
            let all_done = received
                .iter()
                .all(|(peer, table)| peer.1.is_some() && table.iter().all(|(_, o)| o.is_some()));
            if all_done && round > 1 {
                actions.halt();
            }
        }
        state
    }
}

/// The distance-2 palette-reduction problem: instances are 2-hop colored
/// graphs; outputs must again 2-hop color the graph with every color at
/// most `Δ²` (so at most `Δ² + 1` colors).
#[derive(Clone, Copy, Debug, Default)]
pub struct TwoHopReductionProblem;

impl Problem for TwoHopReductionProblem {
    type Input = u32;
    type Output = u32;

    fn is_instance(&self, instance: &LabeledGraph<u32>) -> bool {
        coloring::is_two_hop_coloring(instance)
    }

    fn is_valid_output(&self, instance: &LabeledGraph<u32>, output: &[u32]) -> bool {
        let g = instance.graph();
        if output.len() != g.node_count() {
            return false;
        }
        let Ok(colored) = g.with_labels(output.to_vec()) else { return false };
        if !coloring::is_two_hop_coloring(&colored) {
            return false;
        }
        // Ball bound: each node's color is below its 2-ball size.
        // anonet-lint: allow(anonymity, reason = "is_valid_output is a global-observer verifier, not node-local algorithm code")
        g.nodes().all(|v| (output[v.index()] as usize) < distance::ball(g, v, 2).len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::{generators, BitString, Graph};
    use anonet_runtime::{run, ExecConfig, Oblivious, RngSource, Status, ZeroSource};

    fn reduce(net: &LabeledGraph<u32>) -> Vec<u32> {
        let exec = run(
            &Oblivious(TwoHopReduction::<u32>::new()),
            net,
            &mut ZeroSource,
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(exec.status(), Status::Completed);
        exec.outputs_unwrapped()
    }

    #[test]
    fn reduces_wide_palettes_on_families() {
        for g in [
            generators::cycle(9).unwrap(),
            generators::path(8).unwrap(),
            generators::petersen(),
            generators::grid(3, 4, false).unwrap(),
            generators::wheel(7).unwrap(),
        ] {
            // A valid but wasteful input: huge distinct colors.
            let wide: Vec<u32> = (0..g.node_count() as u32).map(|i| 1000 + 37 * i).collect();
            let net = g.with_labels(wide).unwrap();
            let reduced = reduce(&net);
            assert!(
                TwoHopReductionProblem.is_valid_output(&net, &reduced),
                "invalid reduction on {g}: {reduced:?}"
            );
            let palette = g.with_labels(reduced).unwrap().distinct_label_count();
            assert!(palette <= g.max_degree().pow(2) + 1);
        }
    }

    #[test]
    fn is_deterministic() {
        let g = generators::petersen();
        let net = anonet_graph::coloring::greedy_two_hop_coloring(&g);
        assert_eq!(reduce(&net), reduce(&net));
    }

    #[test]
    fn end_to_end_from_las_vegas_bitstrings() {
        // The real pipeline: Las-Vegas bitstring colors → order-preserving
        // rank conversion → deterministic distance-2 reduction.
        let g = generators::grid(4, 3, false).unwrap();
        let exec = run(
            &Oblivious(crate::two_hop_coloring::TwoHopColoring::new()),
            &g.with_uniform_label(()),
            &mut RngSource::seeded(6),
            &ExecConfig::default(),
        )
        .unwrap();
        let tokens: Vec<BitString> = exec.outputs_unwrapped();
        let mut sorted = tokens.clone();
        sorted.sort();
        sorted.dedup();
        let ranks: Vec<u32> =
            tokens.iter().map(|t| sorted.binary_search(t).expect("present") as u32).collect();
        let net = g.with_labels(ranks).unwrap();
        let reduced = reduce(&net);
        assert!(TwoHopReductionProblem.is_valid_output(&net, &reduced));
    }

    #[test]
    fn single_node_gets_zero() {
        let g = Graph::builder(1).build().unwrap();
        let net = g.with_labels(vec![99u32]).unwrap();
        assert_eq!(reduce(&net), vec![0]);
    }

    #[test]
    fn problem_enforces_ball_bound() {
        let g = generators::path(3).unwrap();
        let net = g.with_labels(vec![0u32, 1, 2]).unwrap();
        // Color 5 exceeds the 2-ball bound (ball sizes are 3 here).
        assert!(!TwoHopReductionProblem.is_valid_output(&net, &[5, 1, 0]));
        assert!(TwoHopReductionProblem.is_valid_output(&net, &[0, 1, 2]));
    }
}
