//! Deterministic anonymous MIS **given a coloring** — the problem-specific
//! deterministic stage of the paper's Theorem-1 decomposition, hand-rolled
//! for MIS.
//!
//! A 2-hop coloring (in fact any proper 1-hop coloring) totally orders
//! each node against its neighbors, so the classic "local minima join"
//! rule works deterministically: iterate (status exchange → join → retire)
//! with joins going to active nodes whose color is smaller than all active
//! neighbors' colors. In every iteration the minimum-colored active node
//! of each active component joins, so at most `n` iterations are needed;
//! no randomness is consumed.
//!
//! Together with [`TwoHopColoring`](crate::two_hop_coloring::TwoHopColoring)
//! this gives the two-stage pipeline of the paper's abstract:
//! *generic randomized preprocessing, then problem-specific deterministic
//! solving* — without going through the general simulation of `A_*`.

use std::marker::PhantomData;

use anonet_graph::Label;
use anonet_runtime::{Actions, ObliviousAlgorithm};

/// Contest status (mirrors [`crate::mis::MisStatus`], kept separate so the
/// two algorithms' message types stay independent).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum DetMisStatus {
    /// Still competing.
    Active,
    /// Entered the MIS.
    Joined,
    /// Has a neighbor in the MIS.
    Retired,
}

/// Messages exchanged by [`DeterministicMis`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum DetMisMessage<C> {
    /// Phase 1: my color and whether I am still active.
    Color(C, bool),
    /// Phase 2: whether I joined this iteration.
    Join(bool),
    /// Phase 3: my settled status.
    Status(DetMisStatus),
}

/// Local state of [`DeterministicMis`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DetMisState<C> {
    color: C,
    status: DetMisStatus,
    outgoing: DetMisMessage<C>,
}

/// Deterministic anonymous MIS on properly colored inputs.
///
/// * **Input**: the node's color (any [`Label`] with a total order; the
///   Theorem-1 pipeline feeds the bitstring colors produced by the
///   randomized 2-hop coloring stage). The input labeling must be a
///   proper 1-hop coloring; a 2-hop coloring qualifies.
/// * **Output**: `true` iff the node is in the MIS.
///
/// Ignores its random bits entirely — it is a deterministic algorithm in
/// the paper's sense.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeterministicMis<C> {
    _marker: PhantomData<fn() -> C>,
}

impl<C> DeterministicMis<C> {
    /// Creates the algorithm.
    pub fn new() -> Self {
        DeterministicMis { _marker: PhantomData }
    }
}

impl<C: Label> ObliviousAlgorithm for DeterministicMis<C> {
    type Input = C;
    type Message = DetMisMessage<C>;
    type Output = bool;
    type State = DetMisState<C>;

    fn init(&self, input: &C, _degree: usize) -> DetMisState<C> {
        DetMisState {
            color: input.clone(),
            status: DetMisStatus::Active,
            outgoing: DetMisMessage::Color(input.clone(), true),
        }
    }

    fn broadcast(&self, state: &DetMisState<C>) -> Option<DetMisMessage<C>> {
        Some(state.outgoing.clone())
    }

    fn step(
        &self,
        mut state: DetMisState<C>,
        round: usize,
        received: &[DetMisMessage<C>],
        _bit: bool,
        actions: &mut Actions<bool>,
    ) -> DetMisState<C> {
        match round % 3 {
            // Phase 2 (receive colors, decide join).
            2 => {
                if state.status == DetMisStatus::Active {
                    let locally_minimal = received.iter().all(|m| match m {
                        DetMisMessage::Color(c, active) => !active || state.color < *c,
                        _ => true,
                    });
                    if locally_minimal {
                        state.status = DetMisStatus::Joined;
                        actions.output(true);
                    }
                }
                state.outgoing = DetMisMessage::Join(state.status == DetMisStatus::Joined);
            }
            // Phase 3 (receive joins, retire).
            0 => {
                if state.status == DetMisStatus::Active
                    && received.iter().any(|m| matches!(m, DetMisMessage::Join(true)))
                {
                    state.status = DetMisStatus::Retired;
                    actions.output(false);
                }
                state.outgoing = DetMisMessage::Status(state.status);
            }
            // Phase 1 (receive statuses, re-announce color, maybe halt).
            1 => {
                if round > 1 {
                    let neighbors_settled = received.iter().all(|m| {
                        matches!(
                            m,
                            DetMisMessage::Status(DetMisStatus::Joined | DetMisStatus::Retired)
                        )
                    });
                    if state.status != DetMisStatus::Active && neighbors_settled {
                        actions.halt();
                    }
                }
                state.outgoing =
                    DetMisMessage::Color(state.color.clone(), state.status == DetMisStatus::Active);
            }
            _ => unreachable!("round % 3 is exhaustive"),
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::MisProblem;
    use anonet_graph::{coloring, generators, Graph, LabeledGraph};
    use anonet_runtime::{run, ExecConfig, Oblivious, Problem, Status, ZeroSource};

    fn solve(net: &LabeledGraph<u32>) -> Vec<bool> {
        let exec = run(
            &Oblivious(DeterministicMis::<u32>::new()),
            net,
            &mut ZeroSource,
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(exec.status(), Status::Completed);
        exec.outputs_unwrapped()
    }

    fn assert_valid_mis(g: &Graph, output: &[bool]) {
        let net = g.with_uniform_label(());
        assert!(MisProblem.is_valid_output(&net, output), "invalid MIS: {output:?}");
    }

    #[test]
    fn solves_on_greedy_colored_graphs() {
        let graphs = vec![
            generators::cycle(7).unwrap(),
            generators::path(10).unwrap(),
            generators::petersen(),
            generators::grid(4, 3, false).unwrap(),
            generators::complete(5).unwrap(),
        ];
        for g in graphs {
            let colored = coloring::greedy_two_hop_coloring(&g);
            let output = solve(&colored);
            assert_valid_mis(&g, &output);
        }
    }

    #[test]
    fn is_deterministic() {
        let g = generators::petersen();
        let colored = coloring::greedy_two_hop_coloring(&g);
        assert_eq!(solve(&colored), solve(&colored));
    }

    #[test]
    fn smallest_color_always_joins() {
        let g = generators::path(4).unwrap();
        let net = g.with_labels(vec![2u32, 0, 1, 3]).unwrap();
        let out = solve(&net);
        assert!(out[1], "the globally minimal color must join");
        assert!(!out[0] && !out[2], "its neighbors must retire");
        assert!(out[3], "maximality forces the far end in");
    }

    #[test]
    fn works_with_bitstring_colors() {
        use anonet_graph::BitString;
        let g = generators::cycle(5).unwrap();
        // 5-cycle needs all-distinct 2-hop colors.
        let labels: Vec<BitString> = (0..5).map(|i| BitString::from_value(i as u64, 3)).collect();
        let net = g.with_labels(labels).unwrap();
        let exec = run(
            &Oblivious(DeterministicMis::<BitString>::new()),
            &net,
            &mut ZeroSource,
            &ExecConfig::default(),
        )
        .unwrap();
        assert!(exec.is_successful());
        assert_valid_mis(&g, &exec.outputs_unwrapped());
    }
}
