//! k-hop colorings: validation and centralized construction.
//!
//! A labeling `ℓ` of `G = (V, E)` is a *k-hop coloring* if `ℓ(u) ≠ ℓ(v)`
//! for all distinct `u, v` at distance at most `k` (paper, Section 1.1).
//! The case `k = 2` is the paper's central object: Theorem 1 shows a 2-hop
//! coloring is *all* the symmetry breaking a randomized anonymous algorithm
//! can ever extract.
//!
//! The distributed Las-Vegas 2-hop colorer lives in `anonet-algorithms`;
//! this module provides centralized validation (used by verifiers, tests,
//! and the candidate machinery of `A_*`) and a centralized greedy colorer
//! for building test fixtures.

use crate::distance::pairs_within;
use crate::graph::Graph;
use crate::labeled::LabeledGraph;
use crate::labels::Label;
use crate::node::NodeId;

/// A witness that a labeling is *not* a k-hop coloring: two nodes within
/// `k` hops sharing a label.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ColoringViolation {
    /// First offending node.
    pub u: NodeId,
    /// Second offending node (distinct from `u`, within `k` hops).
    pub v: NodeId,
}

/// Checks whether `ℓ` is a k-hop coloring, returning a violating pair if not.
///
/// # Errors
///
/// Returns the first [`ColoringViolation`] found (in ascending node order).
pub fn check_k_hop_coloring<L: Label>(
    g: &LabeledGraph<L>,
    k: usize,
) -> Result<(), ColoringViolation> {
    for (u, v) in pairs_within(g.graph(), k) {
        if g.label(u) == g.label(v) {
            return Err(ColoringViolation { u, v });
        }
    }
    Ok(())
}

/// `true` iff `ℓ` is a k-hop coloring of the underlying graph.
pub fn is_k_hop_coloring<L: Label>(g: &LabeledGraph<L>, k: usize) -> bool {
    check_k_hop_coloring(g, k).is_ok()
}

/// `true` iff `ℓ` is a 2-hop coloring — the paper's headline notion.
pub fn is_two_hop_coloring<L: Label>(g: &LabeledGraph<L>) -> bool {
    is_k_hop_coloring(g, 2)
}

/// Centralized greedy k-hop coloring with colors `0, 1, 2, …`.
///
/// Processes nodes in identifier order and gives each node the smallest
/// color not used within `k` hops. Uses at most `Δ^k + 1` colors (each node
/// has at most `Δ + Δ(Δ-1) + … ≤ Δ^k` nodes within `k` hops).
///
/// This is a *simulator-side* tool for fixtures and baselines; the
/// model-faithful distributed colorer is
/// `anonet_algorithms::two_hop_coloring`.
pub fn greedy_k_hop_coloring(g: &Graph, k: usize) -> LabeledGraph<u32> {
    let n = g.node_count();
    let mut colors: Vec<Option<u32>> = vec![None; n];
    for v in g.nodes() {
        let taken: std::collections::HashSet<u32> =
            crate::distance::ball(g, v, k).into_iter().filter_map(|u| colors[u.index()]).collect();
        let c = (0u32..).find(|c| !taken.contains(c)).expect("colors are unbounded");
        colors[v.index()] = Some(c);
    }
    let labels = colors.into_iter().map(|c| c.expect("all nodes colored")).collect();
    LabeledGraph::new(g.clone(), labels).expect("one label per node")
}

/// Centralized greedy 2-hop coloring (see [`greedy_k_hop_coloring`]).
pub fn greedy_two_hop_coloring(g: &Graph) -> LabeledGraph<u32> {
    greedy_k_hop_coloring(g, 2)
}

/// The number of distinct colors used by a labeling.
pub fn color_count<L: Label>(g: &LabeledGraph<L>) -> usize {
    g.distinct_label_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn paper_figure1_coloring_is_two_hop() {
        // Figure 1 colors C6 with 1,2,3,1,2,3.
        let c6 = generators::cycle(6).unwrap();
        let colored = c6.with_labels(vec![1u32, 2, 3, 1, 2, 3]).unwrap();
        assert!(is_two_hop_coloring(&colored));
        // ... but it is not a 3-hop coloring: nodes 0 and 3 share color 1
        // at distance 3.
        let err = check_k_hop_coloring(&colored, 3).unwrap_err();
        assert_eq!(err, ColoringViolation { u: NodeId::new(0), v: NodeId::new(3) });
    }

    #[test]
    fn uniform_labels_violate_one_hop() {
        let g = generators::path(2).unwrap().with_uniform_label(0u8);
        assert!(!is_k_hop_coloring(&g, 1));
    }

    #[test]
    fn one_hop_coloring_that_is_not_two_hop() {
        // C4 colored 1,2,1,2 is a proper 1-hop coloring but nodes 0 and 2
        // are at distance 2 with equal colors.
        let c4 = generators::cycle(4).unwrap();
        let colored = c4.with_labels(vec![1u8, 2, 1, 2]).unwrap();
        assert!(is_k_hop_coloring(&colored, 1));
        assert!(!is_two_hop_coloring(&colored));
    }

    #[test]
    fn zero_hop_coloring_is_trivially_valid() {
        let g = generators::cycle(4).unwrap().with_uniform_label(0u8);
        assert!(is_k_hop_coloring(&g, 0));
    }

    #[test]
    fn greedy_produces_valid_colorings() {
        for g in [
            generators::cycle(7).unwrap(),
            generators::path(9).unwrap(),
            generators::complete(5).unwrap(),
            generators::petersen(),
            generators::hypercube(3).unwrap(),
        ] {
            for k in 1..=3 {
                let colored = greedy_k_hop_coloring(&g, k);
                assert!(is_k_hop_coloring(&colored, k), "greedy failed on {g} with k={k}");
            }
        }
    }

    #[test]
    fn greedy_color_count_is_reasonable() {
        let g = generators::cycle(12).unwrap();
        let colored = greedy_two_hop_coloring(&g);
        // A cycle needs at least 3 colors for 2-hop coloring; greedy should
        // stay within Δ² + 1 = 5.
        let count = color_count(&colored);
        assert!((3..=5).contains(&count), "unexpected color count {count}");
    }

    #[test]
    fn unique_ids_are_a_k_hop_coloring_for_all_k() {
        let g = generators::petersen();
        let ids = g.with_labels((0..10u32).collect()).unwrap();
        for k in 0..5 {
            assert!(is_k_hop_coloring(&ids, k));
        }
    }
}
