//! # anonet-graph
//!
//! Labeled-graph substrate for the `anonet` workspace, a reproduction of
//! *"Anonymous Networks: Randomization = 2-Hop Coloring"* (Emek, Pfister,
//! Seidel, Wattenhofer — PODC 2014).
//!
//! The paper's model operates on finite, connected, simple graphs whose
//! nodes carry labels (finite bitstrings) and whose incident edges are
//! distinguished locally by *port numbers*. This crate provides:
//!
//! * [`Graph`] — a simple undirected graph with an implicit port numbering
//!   (port `p` of node `v` is the `p`-th entry of `v`'s adjacency list);
//! * [`LabeledGraph`] — a graph together with a labeling function
//!   `ℓ : V → L` for any [`Label`] type;
//! * [`BitString`] — the paper's label domain (finite bitstrings) with the
//!   shortlex total order used throughout the derandomization machinery;
//! * [`coloring`] — validation and centralized construction of *k*-hop
//!   colorings (the paper's central notion for `k = 2`);
//! * [`generators`] — the graph families used by the experiments (cycles,
//!   paths, tori, hypercubes, random trees, connected `G(n,p)`, random
//!   regular graphs, the Petersen graph);
//! * [`lift`] — permutation-voltage lifts, i.e. the *products* of the
//!   paper's factor/product machinery, together with their projection maps;
//! * [`iso`] — labeled-graph isomorphism testing (refinement + backtracking),
//!   needed to verify `G_* ≅ G_∞` style statements experimentally;
//! * [`canonical`] — deterministic byte encodings of labeled graphs, the
//!   `s(G_*)` encoding of the paper's `Update-Graph` total order;
//! * [`distance`] — BFS distances, balls `H^i(v)`, diameter.
//!
//! # Example
//!
//! ```
//! use anonet_graph::{generators, coloring};
//!
//! # fn main() -> Result<(), anonet_graph::GraphError> {
//! let c6 = generators::cycle(6)?;
//! // A proper 2-hop coloring of the 6-cycle needs ≥ 3 colors; the paper's
//! // Figure 1 uses colors {1, 2, 3} repeating around the cycle.
//! let colored = c6.with_labels(vec![1u32, 2, 3, 1, 2, 3])?;
//! assert!(coloring::is_k_hop_coloring(&colored, 2));
//! assert!(!coloring::is_k_hop_coloring(&colored, 3));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitstring;
pub mod canonical;
pub mod coloring;
pub mod distance;
mod error;
pub mod generators;
mod graph;
pub mod iso;
mod labeled;
mod labels;
pub mod lift;
mod node;

pub use bitstring::BitString;
pub use error::GraphError;
pub use graph::{Edge, Graph, GraphBuilder};
pub use labeled::LabeledGraph;
pub use labels::Label;
pub use node::{NodeId, Port};

/// Convenient alias for results with [`GraphError`].
pub type Result<T> = std::result::Result<T, GraphError>;
