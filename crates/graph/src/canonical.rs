//! Deterministic byte encodings of labeled graphs.
//!
//! `Update-Graph` (paper, Section 3.1) totally orders finite view graphs by
//! `(|V*|, s(G*))` where `s(G*)` is a bitstring encoding of the graph under
//! a predetermined node order. This module supplies:
//!
//! * [`encode_with_order`] — the `s(·)` encoding given a node order (the
//!   views machinery in `anonet-views` supplies the canonical view order);
//! * [`min_encoding`] — a canonical (order-independent) encoding obtained
//!   by minimizing over permutations, feasible for the tiny graphs handled
//!   by the faithful `A_*` candidate enumeration.

use crate::labeled::LabeledGraph;
use crate::labels::Label;
use crate::node::NodeId;

/// Encodes a labeled graph under the given node order.
///
/// The encoding is `n`, then each node's label (in order), then the upper
/// triangle of the adjacency matrix (row-major, in order), packed into
/// bytes. Two labeled graphs receive equal encodings under orders `σ`, `τ`
/// iff relabeling by `τ∘σ⁻¹` is a label-preserving isomorphism.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the graph's nodes.
pub fn encode_with_order<L: Label>(g: &LabeledGraph<L>, order: &[NodeId]) -> Vec<u8> {
    let n = g.node_count();
    assert_eq!(order.len(), n, "order must list every node exactly once");
    let mut seen = vec![false; n];
    for &v in order {
        assert!(!seen[v.index()], "order must list every node exactly once");
        seen[v.index()] = true;
    }

    let mut out = Vec::new();
    (n as u64).encode(&mut out);
    for &v in order {
        g.label(v).encode(&mut out);
    }
    // Upper-triangle adjacency bits, packed MSB-first.
    let mut byte = 0u8;
    let mut nbits = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let bit = g.graph().has_edge(order[i], order[j]);
            byte = (byte << 1) | u8::from(bit);
            nbits += 1;
            if nbits.is_multiple_of(8) {
                out.push(byte);
                byte = 0;
            }
        }
    }
    if !nbits.is_multiple_of(8) {
        byte <<= 8 - nbits % 8;
        out.push(byte);
    }
    out
}

/// The minimum of [`encode_with_order`] over **all** node permutations —
/// a canonical form: two labeled graphs are isomorphic iff their minimal
/// encodings are equal.
///
/// Cost is `n!`; intended for the ≤ 6-node graphs of the faithful `A_*`
/// candidate enumeration.
///
/// # Panics
///
/// Panics if the graph has more than 8 nodes (call sites should use the
/// view-order encoding instead).
pub fn min_encoding<L: Label>(g: &LabeledGraph<L>) -> Vec<u8> {
    let n = g.node_count();
    assert!(n <= 8, "min_encoding is factorial; use encode_with_order for larger graphs");
    let mut best: Option<Vec<u8>> = None;
    permute(&mut (0..n).map(NodeId::new).collect::<Vec<_>>(), 0, &mut |order| {
        let enc = encode_with_order(g, order);
        if best.as_ref().is_none_or(|b| enc < *b) {
            best = Some(enc);
        }
    });
    best.expect("graphs are non-empty")
}

fn permute(items: &mut Vec<NodeId>, k: usize, visit: &mut impl FnMut(&[NodeId])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::iso::are_isomorphic;
    use crate::Graph;

    #[test]
    fn encoding_depends_on_order() {
        let g = generators::path(3).unwrap().with_labels(vec![1u8, 2, 3]).unwrap();
        let fwd: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let rev: Vec<NodeId> = (0..3).rev().map(NodeId::new).collect();
        assert_ne!(encode_with_order(&g, &fwd), encode_with_order(&g, &rev));
    }

    #[test]
    #[should_panic(expected = "exactly once")]
    fn encoding_rejects_non_permutations() {
        let g = generators::path(2).unwrap().with_uniform_label(0u8);
        let _ = encode_with_order(&g, &[NodeId::new(0), NodeId::new(0)]);
    }

    #[test]
    fn min_encoding_is_canonical_for_isomorphic_graphs() {
        // Two presentations of the labeled triangle with colors {1,2,3}.
        let a = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)])
            .unwrap()
            .with_labels(vec![1u8, 2, 3])
            .unwrap();
        let b = Graph::from_edges(3, &[(2, 0), (0, 1), (2, 1)])
            .unwrap()
            .with_labels(vec![2u8, 3, 1])
            .unwrap();
        assert!(are_isomorphic(&a, &b));
        assert_eq!(min_encoding(&a), min_encoding(&b));
    }

    #[test]
    fn min_encoding_separates_non_isomorphic_graphs() {
        let c4 = generators::cycle(4).unwrap().with_uniform_label(0u8);
        let p4 = generators::path(4).unwrap().with_uniform_label(0u8);
        assert_ne!(min_encoding(&c4), min_encoding(&p4));
        let l1 = generators::cycle(4).unwrap().with_labels(vec![1u8, 2, 1, 2]).unwrap();
        let l2 = generators::cycle(4).unwrap().with_labels(vec![1u8, 1, 2, 2]).unwrap();
        assert_ne!(min_encoding(&l1), min_encoding(&l2));
    }

    #[test]
    fn encoding_is_injective_on_edge_sets() {
        // Same node count and labels, different edges.
        let a = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let b = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (1, 3)]).unwrap();
        let la = a.with_uniform_label(0u8);
        let lb = b.with_uniform_label(0u8);
        let order: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        assert_ne!(encode_with_order(&la, &order), encode_with_order(&lb, &order));
    }
}
