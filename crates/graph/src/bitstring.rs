//! Finite bitstrings — the paper's label domain.

use std::fmt;
use std::str::FromStr;

use crate::labels::Label;

/// A finite bitstring, the paper's canonical label domain (Section 1.1:
/// "we assume hereafter that all labels are finite bitstrings").
///
/// Bitstrings are ordered by the **shortlex** order: first by length, then
/// lexicographically. This makes the order total on strings of *different*
/// lengths as well, which is exactly what the paper's `Update-Bits`
/// machinery requires when comparing bit assignments of different phase
/// lengths (Section 2.2 extends the assignment order by `t₁ < t₂`).
///
/// # Example
///
/// ```
/// use anonet_graph::BitString;
///
/// let a: BitString = "010".parse().unwrap();
/// let b: BitString = "1".parse().unwrap();
/// // shortlex: all length-1 strings precede all length-3 strings
/// assert!(b < a);
/// assert_eq!(a.to_string(), "010");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitString {
    bits: Vec<bool>,
}

impl BitString {
    /// Creates an empty bitstring.
    pub fn new() -> Self {
        BitString { bits: Vec::new() }
    }

    /// Creates a bitstring from an iterator of bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        BitString { bits: bits.into_iter().collect() }
    }

    /// Creates a bitstring holding the `len` low-order bits of `value`,
    /// most significant bit first.
    ///
    /// # Example
    ///
    /// ```
    /// use anonet_graph::BitString;
    /// assert_eq!(BitString::from_value(5, 4).to_string(), "0101");
    /// ```
    pub fn from_value(value: u64, len: usize) -> Self {
        let bits = (0..len).rev().map(|i| (value >> i) & 1 == 1).collect();
        BitString { bits }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` if the bitstring has no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Returns bit `i`, or `None` if out of range.
    pub fn get(&self, i: usize) -> Option<bool> {
        self.bits.get(i).copied()
    }

    /// Appends a bit.
    pub fn push(&mut self, bit: bool) {
        self.bits.push(bit);
    }

    /// Removes and returns the last bit.
    pub fn pop(&mut self) -> Option<bool> {
        self.bits.pop()
    }

    /// Truncates to the first `len` bits (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.bits.truncate(len);
    }

    /// View of the underlying bits.
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }

    /// `true` if `self` is a prefix of `other` (including equality).
    ///
    /// `Update-Bits` only ever *extends* a node's bitstring, so prefix
    /// queries are how the analysis (Lemma 9) relates phases.
    pub fn is_prefix_of(&self, other: &BitString) -> bool {
        other.bits.len() >= self.bits.len() && other.bits[..self.bits.len()] == self.bits[..]
    }

    /// Returns a copy extended by the bits of `suffix`.
    pub fn concat(&self, suffix: &BitString) -> BitString {
        let mut bits = self.bits.clone();
        bits.extend_from_slice(&suffix.bits);
        BitString { bits }
    }

    /// Interprets the bitstring as a big-endian integer.
    ///
    /// # Panics
    ///
    /// Panics if the bitstring is longer than 64 bits.
    pub fn to_value(&self) -> u64 {
        assert!(self.bits.len() <= 64, "bitstring too long for u64");
        self.bits.iter().fold(0u64, |acc, &b| (acc << 1) | u64::from(b))
    }
}

impl PartialOrd for BitString {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitString {
    /// Shortlex: length first, then lexicographic (`false < true`).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bits.len().cmp(&other.bits.len()).then_with(|| self.bits.cmp(&other.bits))
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitString(\"{self}\")")
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits.is_empty() {
            return write!(f, "ε");
        }
        for &b in &self.bits {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

/// Error returned when parsing a [`BitString`] from text fails.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParseBitStringError {
    offset: usize,
}

impl fmt::Display for ParseBitStringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid bit character at offset {}", self.offset)
    }
}

impl std::error::Error for ParseBitStringError {}

impl FromStr for BitString {
    type Err = ParseBitStringError;

    /// Parses `"0"`/`"1"` characters; `"ε"` and the empty string parse to
    /// the empty bitstring.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "ε" {
            return Ok(BitString::new());
        }
        let mut bits = Vec::with_capacity(s.len());
        for (i, c) in s.chars().enumerate() {
            match c {
                '0' => bits.push(false),
                '1' => bits.push(true),
                _ => return Err(ParseBitStringError { offset: i }),
            }
        }
        Ok(BitString { bits })
    }
}

impl FromIterator<bool> for BitString {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitString::from_bits(iter)
    }
}

impl Extend<bool> for BitString {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        self.bits.extend(iter);
    }
}

impl Label for BitString {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.bits.len() as u64).encode(out);
        // Pack bits into bytes, MSB first.
        let mut byte = 0u8;
        for (i, &b) in self.bits.iter().enumerate() {
            byte = (byte << 1) | u8::from(b);
            if i % 8 == 7 {
                out.push(byte);
                byte = 0;
            }
        }
        if !self.bits.len().is_multiple_of(8) {
            byte <<= 8 - self.bits.len() % 8;
            out.push(byte);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_len() {
        let mut s = BitString::new();
        assert!(s.is_empty());
        s.push(true);
        s.push(false);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), Some(true));
        assert_eq!(s.get(1), Some(false));
        assert_eq!(s.get(2), None);
        assert_eq!(s.pop(), Some(false));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn shortlex_order() {
        let parse = |s: &str| s.parse::<BitString>().unwrap();
        // length dominates
        assert!(parse("1") < parse("00"));
        // equal length: lexicographic
        assert!(parse("01") < parse("10"));
        assert!(parse("00") < parse("01"));
        // empty string is smallest
        assert!(BitString::new() < parse("0"));
    }

    #[test]
    fn from_value_roundtrip() {
        for v in 0..32u64 {
            let s = BitString::from_value(v, 5);
            assert_eq!(s.len(), 5);
            assert_eq!(s.to_value(), v);
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        for text in ["0", "1", "0110", "111000111"] {
            let s: BitString = text.parse().unwrap();
            assert_eq!(s.to_string(), text);
        }
        assert_eq!(BitString::new().to_string(), "ε");
        assert_eq!("ε".parse::<BitString>().unwrap(), BitString::new());
        assert!("01x".parse::<BitString>().is_err());
    }

    #[test]
    fn prefix_relation() {
        let a: BitString = "01".parse().unwrap();
        let b: BitString = "0110".parse().unwrap();
        assert!(a.is_prefix_of(&b));
        assert!(a.is_prefix_of(&a));
        assert!(!b.is_prefix_of(&a));
        let c: BitString = "10".parse().unwrap();
        assert!(!c.is_prefix_of(&b));
    }

    #[test]
    fn concat_and_truncate() {
        let a: BitString = "01".parse().unwrap();
        let b: BitString = "10".parse().unwrap();
        let mut ab = a.concat(&b);
        assert_eq!(ab.to_string(), "0110");
        ab.truncate(3);
        assert_eq!(ab.to_string(), "011");
        ab.truncate(10);
        assert_eq!(ab.len(), 3);
    }

    #[test]
    fn encode_distinguishes_length() {
        // "0" vs "00": must encode differently even though packed bits agree.
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        "0".parse::<BitString>().unwrap().encode(&mut e1);
        "00".parse::<BitString>().unwrap().encode(&mut e2);
        assert_ne!(e1, e2);
    }

    #[test]
    fn encode_is_injective_on_small_strings() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for len in 0..=9usize {
            for v in 0..(1u64 << len) {
                let s = BitString::from_value(v, len);
                let mut e = Vec::new();
                s.encode(&mut e);
                assert!(seen.insert(e), "collision for {s}");
            }
        }
    }
}
