//! Labeled-graph isomorphism.
//!
//! Two labeled graphs are isomorphic (`G ≅ G'`) when some bijection is a
//! label-preserving local isomorphism — equivalently, a bijective
//! factorizing map (paper, Section 2.3.1). Port numberings are *not* part
//! of the isomorphism notion.
//!
//! The implementation refines both graphs jointly by iterated neighborhood
//! classes (1-WL / color refinement) and then searches for a bijection by
//! backtracking inside refinement classes. This is exponential in the
//! worst case but instantaneous at the sizes the experiments use, and the
//! refinement prune is total on graphs whose refinement is discrete (in
//! particular on prime 2-hop colored graphs, by Lemma 4).

use std::collections::BTreeMap;

use crate::labeled::LabeledGraph;
use crate::labels::Label;
use crate::node::NodeId;

/// Searches for a label-preserving isomorphism from `a` to `b`.
///
/// Returns `Some(mapping)` with `mapping[v]` the image of node `v` of `a`
/// in `b`, or `None` if the graphs are not isomorphic.
pub fn find_isomorphism<L: Label>(a: &LabeledGraph<L>, b: &LabeledGraph<L>) -> Option<Vec<NodeId>> {
    let n = a.node_count();
    if n != b.node_count() || a.graph().edge_count() != b.graph().edge_count() {
        return None;
    }

    // Joint refinement: classes are shared between the two graphs so class
    // ids are directly comparable.
    let (class_a, class_b) = joint_refinement(a, b)?;

    // Node order for the search: most constrained first (smallest class).
    let mut class_size = BTreeMap::new();
    for &c in class_a.iter().chain(class_b.iter()) {
        *class_size.entry(c).or_insert(0usize) += 1;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| class_size[&class_a[v]]);

    let mut mapping: Vec<Option<NodeId>> = vec![None; n];
    let mut used = vec![false; n];
    if backtrack(a, b, &class_a, &class_b, &order, 0, &mut mapping, &mut used) {
        Some(mapping.into_iter().map(|m| m.expect("search completed")).collect())
    } else {
        None
    }
}

/// `true` iff the two labeled graphs are isomorphic.
pub fn are_isomorphic<L: Label>(a: &LabeledGraph<L>, b: &LabeledGraph<L>) -> bool {
    find_isomorphism(a, b).is_some()
}

/// Verifies that `mapping` is a label-preserving isomorphism from `a` to `b`.
pub fn is_isomorphism<L: Label>(
    a: &LabeledGraph<L>,
    b: &LabeledGraph<L>,
    mapping: &[NodeId],
) -> bool {
    let n = a.node_count();
    if mapping.len() != n || b.node_count() != n {
        return false;
    }
    // Bijection?
    let mut seen = vec![false; n];
    for &img in mapping {
        if img.index() >= n || seen[img.index()] {
            return false;
        }
        seen[img.index()] = true;
    }
    // Labels preserved?
    for v in a.graph().nodes() {
        if a.label(v) != b.label(mapping[v.index()]) {
            return false;
        }
    }
    // Edges preserved both ways (bijection + equal edge counts ⇒ enough to
    // check one direction plus counts, but be explicit).
    if a.graph().edge_count() != b.graph().edge_count() {
        return false;
    }
    for e in a.graph().edges() {
        if !b.graph().has_edge(mapping[e.u.index()], mapping[e.v.index()]) {
            return false;
        }
    }
    true
}

/// Jointly refines the nodes of both graphs into shared classes; returns
/// `None` early if the per-graph class histograms diverge (certain
/// non-isomorphism).
fn joint_refinement<L: Label>(
    a: &LabeledGraph<L>,
    b: &LabeledGraph<L>,
) -> Option<(Vec<u32>, Vec<u32>)> {
    let n = a.node_count();
    // Initial classes by (label, degree).
    let mut keys: Vec<(Vec<u8>, usize, bool)> = Vec::with_capacity(2 * n);
    for v in a.graph().nodes() {
        keys.push((a.label(v).encoded(), a.graph().degree(v), false));
    }
    for v in b.graph().nodes() {
        keys.push((b.label(v).encoded(), b.graph().degree(v), false));
    }
    let mut class = assign_classes(&keys);
    loop {
        if !histograms_match(&class, n) {
            return None;
        }
        // Refine: key = (own class, sorted neighbor classes).
        let mut next_keys: Vec<(u32, Vec<u32>)> = Vec::with_capacity(2 * n);
        for v in a.graph().nodes() {
            let mut nbrs: Vec<u32> =
                a.graph().neighbors(v).iter().map(|u| class[u.index()]).collect();
            nbrs.sort_unstable();
            next_keys.push((class[v.index()], nbrs));
        }
        for v in b.graph().nodes() {
            let mut nbrs: Vec<u32> =
                b.graph().neighbors(v).iter().map(|u| class[n + u.index()]).collect();
            nbrs.sort_unstable();
            next_keys.push((class[n + v.index()], nbrs));
        }
        let next = assign_classes(&next_keys);
        if next == class {
            break;
        }
        class = next;
    }
    if !histograms_match(&class, n) {
        return None;
    }
    Some((class[..n].to_vec(), class[n..].to_vec()))
}

fn assign_classes<K: Ord>(keys: &[K]) -> Vec<u32> {
    let mut sorted: Vec<&K> = keys.iter().collect();
    sorted.sort();
    sorted.dedup();
    let index: BTreeMap<&K, u32> =
        sorted.into_iter().enumerate().map(|(i, k)| (k, i as u32)).collect();
    keys.iter().map(|k| index[k]).collect()
}

fn histograms_match(class: &[u32], n: usize) -> bool {
    let mut ha = BTreeMap::new();
    let mut hb = BTreeMap::new();
    for &c in &class[..n] {
        *ha.entry(c).or_insert(0usize) += 1;
    }
    for &c in &class[n..] {
        *hb.entry(c).or_insert(0usize) += 1;
    }
    ha == hb
}

#[allow(clippy::too_many_arguments)]
fn backtrack<L: Label>(
    a: &LabeledGraph<L>,
    b: &LabeledGraph<L>,
    class_a: &[u32],
    class_b: &[u32],
    order: &[usize],
    depth: usize,
    mapping: &mut Vec<Option<NodeId>>,
    used: &mut Vec<bool>,
) -> bool {
    if depth == order.len() {
        return true;
    }
    let v = order[depth];
    'candidates: for w in 0..class_b.len() {
        if used[w] || class_b[w] != class_a[v] {
            continue;
        }
        // Adjacency consistency with already-mapped nodes.
        for u in a.graph().neighbors(NodeId::new(v)) {
            if let Some(img) = mapping[u.index()] {
                if !b.graph().has_edge(NodeId::new(w), img) {
                    continue 'candidates;
                }
            }
        }
        // Non-adjacency consistency: every mapped non-neighbor must stay
        // non-adjacent (needed because we check edges only from v's side).
        for (u, m) in mapping.iter().enumerate() {
            if let Some(img) = m {
                let adj_a = a.graph().has_edge(NodeId::new(v), NodeId::new(u));
                let adj_b = b.graph().has_edge(NodeId::new(w), *img);
                if adj_a != adj_b {
                    continue 'candidates;
                }
            }
        }
        mapping[v] = Some(NodeId::new(w));
        used[w] = true;
        if backtrack(a, b, class_a, class_b, order, depth + 1, mapping, used) {
            return true;
        }
        mapping[v] = None;
        used[w] = false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::Graph;

    #[test]
    fn identical_graphs_are_isomorphic() {
        let g = generators::petersen().with_degree_labels();
        let m = find_isomorphism(&g, &g).unwrap();
        assert!(is_isomorphism(&g, &g, &m));
    }

    #[test]
    fn relabeled_cycle_is_isomorphic_to_rotation() {
        let c6 = generators::cycle(6).unwrap();
        let a = c6.with_labels(vec![1u8, 2, 3, 1, 2, 3]).unwrap();
        let b = c6.with_labels(vec![2u8, 3, 1, 2, 3, 1]).unwrap(); // rotated by 1
        let m = find_isomorphism(&a, &b).unwrap();
        assert!(is_isomorphism(&a, &b, &m));
    }

    #[test]
    fn different_labels_are_not_isomorphic() {
        let c4 = generators::cycle(4).unwrap();
        let a = c4.with_labels(vec![1u8, 2, 1, 2]).unwrap();
        let b = c4.with_labels(vec![1u8, 1, 2, 2]).unwrap();
        assert!(!are_isomorphic(&a, &b));
    }

    #[test]
    fn cycle_vs_path_not_isomorphic() {
        let a = generators::cycle(4).unwrap().with_uniform_label(0u8);
        let b = generators::path(4).unwrap().with_uniform_label(0u8);
        assert!(!are_isomorphic(&a, &b));
    }

    #[test]
    fn port_renumbering_is_still_isomorphic() {
        // Same topology, different insertion order ⇒ different ports, but
        // isomorphism ignores ports.
        let a = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap().with_uniform_label(0u8);
        let b = Graph::from_edges(3, &[(0, 2), (1, 2), (0, 1)]).unwrap().with_uniform_label(0u8);
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn c6_not_isomorphic_to_two_triangles() {
        let a = generators::cycle(6).unwrap().with_uniform_label(0u8);
        let b = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
            .unwrap()
            .with_uniform_label(0u8);
        assert!(!are_isomorphic(&a, &b));
    }

    #[test]
    fn regular_but_nonisomorphic() {
        // K3,3 and the 3-prism are both 3-regular on 6 nodes but differ
        // (the prism has triangles). Refinement alone cannot separate them;
        // the backtracking must.
        let k33 = Graph::from_edges(
            6,
            &[(0, 3), (0, 4), (0, 5), (1, 3), (1, 4), (1, 5), (2, 3), (2, 4), (2, 5)],
        )
        .unwrap()
        .with_uniform_label(0u8);
        let prism = Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (0, 3), (1, 4), (2, 5)],
        )
        .unwrap()
        .with_uniform_label(0u8);
        assert!(!are_isomorphic(&k33, &prism));
        assert!(are_isomorphic(&k33, &k33));
    }

    #[test]
    fn is_isomorphism_rejects_bad_maps() {
        let g = generators::cycle(4).unwrap().with_uniform_label(0u8);
        // Swapping two adjacent nodes only is not an automorphism of C4's
        // edge set... actually check a genuinely broken map: constant.
        let bad = vec![NodeId::new(0); 4];
        assert!(!is_isomorphism(&g, &g, &bad));
        let not_edge_preserving =
            vec![NodeId::new(0), NodeId::new(2), NodeId::new(1), NodeId::new(3)];
        assert!(!is_isomorphism(&g, &g, &not_edge_preserving));
    }
}
