//! Permutation-voltage lifts: constructing *products* of a base graph.
//!
//! The paper's factor/product relation (Section 2.3.1) is the labeled
//! version of graph lifts / covering graphs: `G ⪰_f G'` means the
//! factorizing map `f` is a surjective, label-preserving local isomorphism.
//! Every product of `G'` arises (up to isomorphism) as a *permutation
//! voltage lift*: pick a multiplicity `m` and a permutation `π_e ∈ S_m` per
//! base edge; the lift has nodes `(v, i)` and edges
//! `{(u, i), (v, π_e(i))}` for each base edge `e = (u, v)`.
//!
//! Lifts are how the experiment suite manufactures non-trivial products
//! whose quotient (the finite view graph) must recover the base — the
//! `C12 ⪰ C6 ⪰ C3` chain of the paper's Figure 2 is exactly such a tower.

// anonet-lint: allow(randomness, reason = "seeded lift/permutation generators build experiment inputs, not pipeline state")
use rand::Rng;

use crate::error::GraphError;
use crate::graph::Graph;
use crate::labeled::LabeledGraph;
use crate::labels::Label;
use crate::node::NodeId;
use crate::Result;

/// A permutation of `0..m`, validated at construction.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Perm {
    map: Vec<usize>,
}

impl Perm {
    /// Creates a permutation from `map`, where `map[i]` is the image of `i`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidPermutation`] if `map` is not a
    /// bijection on `0..map.len()`.
    pub fn new(map: Vec<usize>) -> Result<Self> {
        let m = map.len();
        let mut seen = vec![false; m];
        for &x in &map {
            if x >= m || seen[x] {
                return Err(GraphError::InvalidPermutation { len: m });
            }
            seen[x] = true;
        }
        Ok(Perm { map })
    }

    /// The identity permutation on `0..m`.
    pub fn identity(m: usize) -> Self {
        Perm { map: (0..m).collect() }
    }

    /// The cyclic shift `i ↦ (i + 1) mod m`.
    pub fn shift(m: usize) -> Self {
        Perm { map: (0..m).map(|i| (i + 1) % m).collect() }
    }

    /// A uniformly random permutation (Fisher–Yates).
    pub fn random<R: Rng + ?Sized>(m: usize, rng: &mut R) -> Self {
        let mut map: Vec<usize> = (0..m).collect();
        for i in (1..m).rev() {
            map.swap(i, rng.gen_range(0..=i));
        }
        Perm { map }
    }

    /// Degree of the permutation (the `m` in `S_m`).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Image of `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn apply(&self, i: usize) -> usize {
        self.map[i]
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Perm {
        let mut inv = vec![0; self.map.len()];
        for (i, &x) in self.map.iter().enumerate() {
            inv[x] = i;
        }
        Perm { map: inv }
    }
}

/// An `m`-lift of a base graph, together with its projection map.
///
/// The projection sends lift node `(v, i)` (stored at index `v*m + i`... in
/// fact at an implementation-defined index; use [`Lift::projection`]) to
/// base node `v`, and is a factorizing map in the paper's sense whenever
/// the base is labeled and labels are lifted with [`Lift::lift_labels`].
#[derive(Clone, Debug)]
pub struct Lift {
    graph: Graph,
    projection: Vec<NodeId>,
    multiplicity: usize,
}

impl Lift {
    /// The lifted graph (has `m·|V(base)|` nodes).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the lift, returning the lifted graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// The projection map: `projection()[x]` is the base node under lift
    /// node `x`.
    pub fn projection(&self) -> &[NodeId] {
        &self.projection
    }

    /// The lift multiplicity `m`.
    pub fn multiplicity(&self) -> usize {
        self.multiplicity
    }

    /// Lifts a labeling of the base to the lift: each lift node inherits
    /// the label of its base node, making the projection label-preserving.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::LabelCountMismatch`] if `base_labels` does not
    /// match the base graph the lift was built from.
    pub fn lift_labels<L: Label>(&self, base_labels: &[L]) -> Result<LabeledGraph<L>> {
        let base_n = self.projection.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        if base_labels.len() < base_n {
            return Err(GraphError::LabelCountMismatch {
                labels: base_labels.len(),
                nodes: base_n,
            });
        }
        let labels = self.projection.iter().map(|v| base_labels[v.index()].clone()).collect();
        LabeledGraph::new(self.graph.clone(), labels)
    }
}

/// Builds the `m`-lift of `base` from one permutation per base edge.
///
/// `voltages[k]` is the permutation of the `k`-th edge in `base.edges()`
/// order. The result may be disconnected; use [`random_connected_lift`]
/// when connectivity is required.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m = 0`, if
/// `voltages.len()` differs from the edge count, or if any permutation has
/// degree other than `m`.
pub fn lift(base: &Graph, m: usize, voltages: &[Perm]) -> Result<Lift> {
    if m == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "lift multiplicity must be >= 1".into(),
        });
    }
    let edges: Vec<_> = base.edges().collect();
    if voltages.len() != edges.len() {
        return Err(GraphError::InvalidParameter {
            reason: format!("{} voltages supplied for {} edges", voltages.len(), edges.len()),
        });
    }
    if let Some(p) = voltages.iter().find(|p| p.len() != m) {
        return Err(GraphError::InvalidParameter {
            reason: format!("voltage of degree {} does not match multiplicity {m}", p.len()),
        });
    }
    let base_n = base.node_count();
    let idx = |v: NodeId, i: usize| NodeId::new(v.index() * m + i);
    let voltage_of: std::collections::HashMap<crate::graph::Edge, &Perm> =
        edges.iter().copied().zip(voltages.iter()).collect();
    // Build adjacency directly so that port p of lift node (v, i) leads to
    // a lift of the base neighbor at port p of v. This makes the projection
    // a *port-preserving* local isomorphism, which is what lifting whole
    // executions of port-aware algorithms requires.
    let mut adj: Vec<Vec<NodeId>> = Vec::with_capacity(base_n * m);
    for v in base.nodes() {
        for i in 0..m {
            let mut nbrs = Vec::with_capacity(base.degree(v));
            for &u in base.neighbors(v) {
                let e = crate::graph::Edge::new(v, u);
                let perm = voltage_of[&e];
                // The voltage acts along the canonical direction e.u → e.v;
                // traversing against it applies the inverse.
                let j = if v == e.u { perm.apply(i) } else { perm.inverse().apply(i) };
                nbrs.push(idx(u, j));
            }
            adj.push(nbrs);
        }
    }
    let graph = Graph::from_adjacency(adj)?;
    let projection = (0..base_n * m).map(|x| NodeId::new(x / m)).collect();
    Ok(Lift { graph, projection, multiplicity: m })
}

/// Builds a *connected* random `m`-lift of `base`, retrying fresh random
/// voltages up to `max_tries` times.
///
/// # Errors
///
/// Returns [`GraphError::RetriesExhausted`] if no connected lift is found,
/// or parameter errors from [`lift`].
pub fn random_connected_lift<R: Rng + ?Sized>(
    base: &Graph,
    m: usize,
    max_tries: usize,
    rng: &mut R,
) -> Result<Lift> {
    let edge_count = base.edges().count();
    for _ in 0..max_tries {
        let voltages: Vec<Perm> = (0..edge_count).map(|_| Perm::random(m, rng)).collect();
        let l = lift(base, m, &voltages)?;
        if l.graph().is_connected() {
            return Ok(l);
        }
    }
    Err(GraphError::RetriesExhausted {
        what: format!("a connected {m}-lift of {base}"),
        attempts: max_tries,
    })
}

/// The cyclic `m`-lift of a cycle: `C_n` lifted with shift voltages on one
/// edge and identities elsewhere yields `C_{n·m}` — the construction behind
/// the paper's Figure 2 chain `C3 → C6 → C12`.
///
/// # Errors
///
/// Propagates parameter errors from [`lift`].
pub fn cyclic_cycle_lift(n: usize, m: usize) -> Result<Lift> {
    let base = crate::generators::cycle(n)?;
    let edge_count = base.edges().count();
    let mut voltages = vec![Perm::identity(m); edge_count];
    // Put the shift on the wrap-around edge (0, n-1), which is the first
    // edge in sorted order touching node 0 and n-1.
    let edges: Vec<_> = base.edges().collect();
    let wrap = edges
        .iter()
        .position(|e| e.u == NodeId::new(0) && e.v == NodeId::new(n - 1))
        .expect("cycle has a wrap-around edge");
    voltages[wrap] = Perm::shift(m);
    lift(&base, m, &voltages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn perm_validation() {
        assert!(Perm::new(vec![0, 1, 2]).is_ok());
        assert!(Perm::new(vec![0, 0, 2]).is_err());
        assert!(Perm::new(vec![0, 3, 1]).is_err());
    }

    #[test]
    fn perm_inverse() {
        let p = Perm::new(vec![2, 0, 1]).unwrap();
        let inv = p.inverse();
        for i in 0..3 {
            assert_eq!(inv.apply(p.apply(i)), i);
        }
    }

    #[test]
    fn identity_lift_is_disjoint_copies() {
        let base = generators::cycle(4).unwrap();
        let volts = vec![Perm::identity(3); 4];
        let l = lift(&base, 3, &volts).unwrap();
        assert_eq!(l.graph().node_count(), 12);
        assert_eq!(l.graph().edge_count(), 12);
        assert!(!l.graph().is_connected()); // 3 disjoint C4s
    }

    #[test]
    fn lift_preserves_degrees() {
        let base = generators::petersen();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let l = random_connected_lift(&base, 2, 100, &mut rng).unwrap();
        let g = l.graph();
        assert_eq!(g.node_count(), 20);
        for x in g.nodes() {
            assert_eq!(g.degree(x), base.degree(l.projection()[x.index()]));
        }
    }

    #[test]
    fn projection_is_local_isomorphism() {
        // For every lift node x, the projection restricted to Γ(x) must be
        // a bijection onto Γ(f(x)) — the defining property of a factor map.
        let base = generators::cycle(5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let l = random_connected_lift(&base, 3, 100, &mut rng).unwrap();
        let g = l.graph();
        let f = l.projection();
        for x in g.nodes() {
            let mut images: Vec<NodeId> = g.neighbors(x).iter().map(|y| f[y.index()]).collect();
            images.sort();
            let mut expect: Vec<NodeId> = base.neighbors(f[x.index()]).to_vec();
            expect.sort();
            assert_eq!(images, expect);
        }
    }

    #[test]
    fn cyclic_lift_of_cycle_is_bigger_cycle() {
        // C3 lifted cyclically with m=2 must be C6 (connected, 2-regular, 6 nodes).
        let l = cyclic_cycle_lift(3, 2).unwrap();
        let g = l.graph();
        assert_eq!(g.node_count(), 6);
        assert!(g.is_connected());
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        // ... and C3 lifted with m=4 gives C12.
        let l = cyclic_cycle_lift(3, 4).unwrap();
        assert_eq!(l.graph().node_count(), 12);
        assert!(l.graph().is_connected());
    }

    #[test]
    fn lift_ports_mirror_base_ports() {
        // Port p of lift node x must lead to a lift of the base neighbor at
        // port p of the projected node — and reverse ports must agree too.
        let base = generators::petersen();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let l = random_connected_lift(&base, 3, 100, &mut rng).unwrap();
        let g = l.graph();
        let f = l.projection();
        for x in g.nodes() {
            let v = f[x.index()];
            for p in 0..g.degree(x) {
                let p = crate::Port::new(p);
                assert_eq!(f[g.endpoint(x, p).index()], base.endpoint(v, p));
                assert_eq!(g.reverse_port(x, p), base.reverse_port(v, p));
            }
        }
    }

    #[test]
    fn lift_labels_follow_projection() {
        let l = cyclic_cycle_lift(3, 2).unwrap();
        let lg = l.lift_labels(&[10u32, 20, 30]).unwrap();
        for x in lg.graph().nodes() {
            let base = l.projection()[x.index()];
            assert_eq!(*lg.label(x), [10u32, 20, 30][base.index()]);
        }
        assert!(l.lift_labels(&[1u32]).is_err());
    }

    #[test]
    fn voltage_count_must_match() {
        let base = generators::cycle(3).unwrap();
        assert!(lift(&base, 2, &[Perm::identity(2)]).is_err());
        assert!(lift(&base, 0, &[]).is_err());
    }
}
