//! Generators for the graph families used across the experiments.
//!
//! All generators return **connected simple** graphs (the paper's model
//! only considers those) or an error when the parameters make that
//! impossible. Randomized generators take an explicit `Rng` so every
//! experiment is reproducible from a seed.

// anonet-lint: allow-file(randomness, reason = "seeded instance generators build experiment inputs, not pipeline state")
use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder};
use crate::Result;

/// The cycle `C_n` (`n ≥ 3`), nodes in ring order.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for `n < 3`.
pub fn cycle(n: usize) -> Result<Graph> {
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            reason: format!("cycle requires n >= 3, got {n}"),
        });
    }
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b = b.edge(i, (i + 1) % n)?;
    }
    b.build()
}

/// The path `P_n` (`n ≥ 1`), nodes in line order.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for `n = 0`.
pub fn path(n: usize) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidParameter { reason: "path requires n >= 1".into() });
    }
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b = b.edge(i - 1, i)?;
    }
    b.build()
}

/// The complete graph `K_n` (`n ≥ 1`).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for `n = 0`.
pub fn complete(n: usize) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidParameter { reason: "complete requires n >= 1".into() });
    }
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b = b.edge(u, v)?;
        }
    }
    b.build()
}

/// The star `K_{1,n-1}` (`n ≥ 2`): node 0 is the center.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for `n < 2`.
pub fn star(n: usize) -> Result<Graph> {
    if n < 2 {
        return Err(GraphError::InvalidParameter { reason: "star requires n >= 2".into() });
    }
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b = b.edge(0, v)?;
    }
    b.build()
}

/// The `w × h` grid; with `wrap = true`, the torus (requires `w, h ≥ 3`
/// when wrapping, so no parallel edges arise).
///
/// Node `(x, y)` has index `y * w + x`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if a side is zero, or when
/// wrapping with a side `< 3`.
pub fn grid(w: usize, h: usize, wrap: bool) -> Result<Graph> {
    if w == 0 || h == 0 {
        return Err(GraphError::InvalidParameter { reason: "grid sides must be >= 1".into() });
    }
    if wrap && (w < 3 || h < 3) {
        return Err(GraphError::InvalidParameter {
            reason: "torus requires both sides >= 3 to stay simple".into(),
        });
    }
    if !wrap && w == 1 && h == 1 {
        return GraphBuilder::new(1).build();
    }
    let idx = |x: usize, y: usize| y * w + x;
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b = b.edge(idx(x, y), idx(x + 1, y))?;
            } else if wrap {
                b = b.edge(idx(x, y), idx(0, y))?;
            }
            if y + 1 < h {
                b = b.edge(idx(x, y), idx(x, y + 1))?;
            } else if wrap {
                b = b.edge(idx(x, y), idx(x, 0))?;
            }
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube `Q_d` (`d ≥ 1`), `2^d` nodes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for `d = 0` or `d > 20`.
pub fn hypercube(d: usize) -> Result<Graph> {
    if d == 0 || d > 20 {
        return Err(GraphError::InvalidParameter {
            reason: format!("hypercube requires 1 <= d <= 20, got {d}"),
        });
    }
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if v < u {
                b = b.edge(v, u)?;
            }
        }
    }
    b.build()
}

/// The wheel `W_n`: a hub (node 0) connected to every node of an outer
/// `(n-1)`-cycle (`n ≥ 4`).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for `n < 4`.
pub fn wheel(n: usize) -> Result<Graph> {
    if n < 4 {
        return Err(GraphError::InvalidParameter {
            reason: format!("wheel requires n >= 4, got {n}"),
        });
    }
    let rim = n - 1;
    let mut b = GraphBuilder::new(n);
    for i in 0..rim {
        b = b.edge(1 + i, 1 + (i + 1) % rim)?;
        b = b.edge(0, 1 + i)?;
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}` (`a, b ≥ 1`); the first `a`
/// nodes form one side.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if a side is empty.
pub fn complete_bipartite(a: usize, b: usize) -> Result<Graph> {
    if a == 0 || b == 0 {
        return Err(GraphError::InvalidParameter { reason: "both sides must be non-empty".into() });
    }
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in 0..b {
            builder = builder.edge(u, a + v)?;
        }
    }
    builder.build()
}

/// The circulant graph `C_n(offsets)`: node `i` is adjacent to
/// `i ± o mod n` for each offset `o`. Offsets must be distinct, in
/// `1..=n/2`, and produce a connected graph (offset 1 suffices).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for bad offsets and
/// [`GraphError::Disconnected`] if the chosen offsets do not connect.
pub fn circulant(n: usize, offsets: &[usize]) -> Result<Graph> {
    if n < 3 {
        return Err(GraphError::InvalidParameter { reason: "circulant requires n >= 3".into() });
    }
    let mut sorted = offsets.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != offsets.len() || sorted.iter().any(|&o| o == 0 || o > n / 2) {
        return Err(GraphError::InvalidParameter {
            reason: format!("offsets must be distinct and within 1..={}", n / 2),
        });
    }
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for &o in &sorted {
            let j = (i + o) % n;
            // Each undirected edge once: skip the mirrored insertion
            // (for o = n/2 with even n, i + o and i - o coincide).
            match b.clone().edge(i, j) {
                Ok(nb) => b = nb,
                Err(GraphError::ParallelEdge { .. }) => {}
                Err(e) => return Err(e),
            }
        }
    }
    b.build()
}

/// The Petersen graph (10 nodes, 3-regular, diameter 2).
pub fn petersen() -> Graph {
    let mut b = GraphBuilder::new(10);
    // outer 5-cycle 0..4, inner 5-star 5..9, spokes i -- i+5
    for i in 0..5 {
        b = b.edge(i, (i + 1) % 5).expect("static edges are valid");
        b = b.edge(5 + i, 5 + (i + 2) % 5).expect("static edges are valid");
        b = b.edge(i, i + 5).expect("static edges are valid");
    }
    b.build().expect("the Petersen graph is connected")
}

/// A uniformly random labeled tree on `n ≥ 1` nodes (via Prüfer sequences).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for `n = 0`.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidParameter { reason: "tree requires n >= 1".into() });
    }
    if n == 1 {
        return GraphBuilder::new(1).build();
    }
    if n == 2 {
        return GraphBuilder::new(2).edge(0, 1)?.build();
    }
    // Prüfer decoding.
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    let mut b = GraphBuilder::new(n);
    let mut used = vec![false; n];
    for &v in &prufer {
        let leaf = (0..n).find(|&u| degree[u] == 1 && !used[u]).expect("a leaf always exists");
        b = b.edge(leaf, v)?;
        used[leaf] = true;
        degree[leaf] -= 1;
        degree[v] -= 1;
    }
    let remaining: Vec<usize> = (0..n).filter(|&u| !used[u] && degree[u] == 1).collect();
    debug_assert_eq!(remaining.len(), 2);
    b = b.edge(remaining[0], remaining[1])?;
    b.build()
}

/// A connected Erdős–Rényi graph: sample `G(n, p)` and, if disconnected,
/// add one uniformly random edge between distinct components until
/// connected. `n ≥ 1`, `0 ≤ p ≤ 1`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for `n = 0` or `p ∉ [0, 1]`.
pub fn gnp_connected<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidParameter { reason: "gnp requires n >= 1".into() });
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            reason: format!("p must lie in [0, 1], got {p}"),
        });
    }
    let mut adj = vec![std::collections::BTreeSet::new(); n];
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                adj[u].insert(v);
                adj[v].insert(u);
            }
        }
    }
    // Union-find to stitch components together.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for (u, nbrs) in adj.iter().enumerate() {
        for &v in nbrs {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru] = rv;
            }
        }
    }
    loop {
        let roots: Vec<usize> = (0..n).filter(|&v| find(&mut parent, v) == v).collect();
        if roots.len() <= 1 {
            break;
        }
        // Connect two random nodes in different components.
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb && !adj[a].contains(&b) {
            adj[a].insert(b);
            adj[b].insert(a);
            parent[ra] = rb;
        }
    }
    let mut builder = GraphBuilder::new(n);
    for (u, nbrs) in adj.iter().enumerate() {
        for &v in nbrs {
            if u < v {
                builder = builder.edge(u, v)?;
            }
        }
    }
    builder.build()
}

/// A random `d`-regular connected graph on `n` nodes via the pairing
/// (configuration) model with rejection, retrying up to `max_tries` times.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n·d` is odd, `d ≥ n`, or
/// `d = 0` with `n > 1`; returns [`GraphError::RetriesExhausted`] if no
/// simple connected pairing is found within the budget.
pub fn random_regular<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    max_tries: usize,
    rng: &mut R,
) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "random_regular requires n >= 1".into(),
        });
    }
    if n == 1 && d == 0 {
        return GraphBuilder::new(1).build();
    }
    if d == 0 || d >= n || !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "no simple {d}-regular graph on {n} nodes (need d < n, n*d even, d >= 1)"
            ),
        });
    }
    for _ in 0..max_tries {
        // Half-edges: d copies of each node, shuffled and paired.
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(rng);
        let mut builder = GraphBuilder::new(n);
        let mut ok = true;
        for pair in stubs.chunks(2) {
            match builder.clone().edge(pair[0], pair[1]) {
                Ok(b) => builder = b,
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        if let Ok(g) = builder.build() {
            return Ok(g);
        }
    }
    Err(GraphError::RetriesExhausted {
        what: format!("a connected {d}-regular graph on {n} nodes"),
        attempts: max_tries,
    })
}

/// The generator families, reified for structured instance generation
/// (the testkit's seeded DSL iterates over these).
///
/// Each family knows how to [`sample`](Family::sample) a **connected**
/// graph of roughly `n` nodes from an explicit RNG, clamping `n` into the
/// family's feasible range — a total function on `n ≥ 1`, so sweeps never
/// have to special-case parameter validity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Family {
    /// [`cycle`] (`n` clamped to ≥ 3).
    Cycle,
    /// [`path`].
    Path,
    /// [`complete`] (`n` clamped to ≤ 8 to keep instances small).
    Complete,
    /// [`star`] (`n` clamped to ≥ 2).
    Star,
    /// [`grid`] without wrapping, sides near `√n`.
    Grid,
    /// [`grid`] with wrapping (torus), sides clamped to ≥ 3.
    Torus,
    /// [`hypercube`] with `d = ⌈log₂ n⌉` clamped to `1..=4`.
    Hypercube,
    /// [`wheel`] (`n` clamped to ≥ 4).
    Wheel,
    /// [`complete_bipartite`] with sides `⌈n/2⌉` and `⌊n/2⌋`.
    Bipartite,
    /// [`circulant`] with offsets `{1, 2}` (`n` clamped to ≥ 5).
    Circulant,
    /// [`petersen`] (ignores `n`).
    Petersen,
    /// [`random_tree`].
    Tree,
    /// [`gnp_connected`] with `p = 0.4` (`n` clamped to ≥ 2).
    Gnp,
    /// [`random_regular`] with `d = 3` (`n` clamped to an even value ≥ 4).
    Regular,
}

impl Family {
    /// Every family, in the order sweeps iterate them.
    pub const ALL: [Family; 14] = [
        Family::Cycle,
        Family::Path,
        Family::Complete,
        Family::Star,
        Family::Grid,
        Family::Torus,
        Family::Hypercube,
        Family::Wheel,
        Family::Bipartite,
        Family::Circulant,
        Family::Petersen,
        Family::Tree,
        Family::Gnp,
        Family::Regular,
    ];

    /// The family's stable lowercase name (used by replay encodings).
    pub fn name(self) -> &'static str {
        match self {
            Family::Cycle => "cycle",
            Family::Path => "path",
            Family::Complete => "complete",
            Family::Star => "star",
            Family::Grid => "grid",
            Family::Torus => "torus",
            Family::Hypercube => "hypercube",
            Family::Wheel => "wheel",
            Family::Bipartite => "bipartite",
            Family::Circulant => "circulant",
            Family::Petersen => "petersen",
            Family::Tree => "tree",
            Family::Gnp => "gnp",
            Family::Regular => "regular",
        }
    }

    /// Samples a connected graph of roughly `n` nodes (`n ≥ 1`; each
    /// family clamps into its feasible range, so the exact node count may
    /// differ — read it off the result).
    ///
    /// Deterministic given the RNG state; deterministic families ignore
    /// the RNG entirely.
    ///
    /// # Errors
    ///
    /// Only the propagated generator errors that the clamps cannot rule
    /// out (e.g. [`GraphError::RetriesExhausted`] from
    /// [`random_regular`], which is practically unreachable at `d = 3`).
    pub fn sample<R: Rng + ?Sized>(self, n: usize, rng: &mut R) -> Result<Graph> {
        let n = n.max(1);
        match self {
            Family::Cycle => cycle(n.max(3)),
            Family::Path => path(n),
            Family::Complete => complete(n.min(8)),
            Family::Star => star(n.max(2)),
            Family::Grid => {
                let w = (1..).find(|w| w * w >= n).expect("squares are unbounded");
                grid(w, n.div_ceil(w).max(1), false)
            }
            Family::Torus => {
                let w = 3usize;
                grid(w, (n.div_ceil(w)).max(3), true)
            }
            Family::Hypercube => {
                let d = (1..).find(|d| 1usize << d >= n).expect("powers are unbounded");
                hypercube(d.clamp(1, 4))
            }
            Family::Wheel => wheel(n.max(4)),
            Family::Bipartite => complete_bipartite(n.div_ceil(2), (n / 2).max(1)),
            Family::Circulant => circulant(n.max(5), &[1, 2]),
            Family::Petersen => Ok(petersen()),
            Family::Tree => random_tree(n, rng),
            Family::Gnp => gnp_connected(n.max(2), 0.4, rng),
            Family::Regular => {
                let n = if n < 4 {
                    4
                } else {
                    n + n % 2 // 3-regular needs n·d even
                };
                random_regular(n, 3, 200, rng)
            }
        }
    }
}

impl std::str::FromStr for Family {
    type Err = GraphError;

    fn from_str(s: &str) -> Result<Self> {
        Family::ALL
            .into_iter()
            .find(|f| f.name() == s)
            .ok_or_else(|| GraphError::InvalidParameter { reason: format!("unknown family {s:?}") })
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn families_sample_connected_graphs_for_all_small_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for family in Family::ALL {
            for n in 1..=13 {
                let g = family
                    .sample(n, &mut rng)
                    .unwrap_or_else(|e| panic!("{family} failed at n={n}: {e}"));
                assert!(g.is_connected(), "{family} produced a disconnected graph at n={n}");
                assert!(g.node_count() >= 1);
            }
        }
    }

    #[test]
    fn family_names_roundtrip() {
        for family in Family::ALL {
            assert_eq!(family.name().parse::<Family>().unwrap(), family);
        }
        assert!("triangle".parse::<Family>().is_err());
    }

    #[test]
    fn family_sampling_is_deterministic_per_rng_state() {
        let a = Family::Gnp.sample(9, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        let b = Family::Gnp.sample(9, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6).unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 6);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert!(cycle(2).is_err());
    }

    #[test]
    fn path_shape() {
        let g = path(5).unwrap();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(crate::NodeId::new(0)), 1);
        assert_eq!(g.degree(crate::NodeId::new(2)), 2);
        assert!(path(0).is_err());
    }

    #[test]
    fn complete_shape() {
        let g = complete(5).unwrap();
        assert_eq!(g.edge_count(), 10);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
    }

    #[test]
    fn star_shape() {
        let g = star(5).unwrap();
        assert_eq!(g.degree(crate::NodeId::new(0)), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn grid_and_torus() {
        let g = grid(3, 4, false).unwrap();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // vertical + horizontal
        let t = grid(3, 3, true).unwrap();
        assert!(t.nodes().all(|v| t.degree(v) == 4));
        assert!(grid(2, 3, true).is_err());
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.node_count(), 16);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(hypercube(0).is_err());
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(7).unwrap();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.degree(crate::NodeId::new(0)), 6);
        for v in 1..7 {
            assert_eq!(g.degree(crate::NodeId::new(v)), 3);
        }
        assert!(wheel(3).is_err());
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4).unwrap();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.degree(crate::NodeId::new(0)), 4);
        assert_eq!(g.degree(crate::NodeId::new(3)), 3);
        assert!(complete_bipartite(0, 3).is_err());
    }

    #[test]
    fn circulant_shapes() {
        // C_8(1) is the cycle.
        let g = circulant(8, &[1]).unwrap();
        assert_eq!(g.edge_count(), 8);
        // C_8(1, 2): 4-regular.
        let g = circulant(8, &[1, 2]).unwrap();
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        // n/2 offset on even n gives a perfect-matching chord set.
        let g = circulant(6, &[1, 3]).unwrap();
        assert!(g.nodes().all(|v| g.degree(v) == 3));
        assert!(circulant(6, &[0]).is_err());
        assert!(circulant(6, &[4]).is_err());
        assert!(circulant(6, &[1, 1]).is_err());
    }

    #[test]
    fn circulants_are_vertex_transitive_in_views() {
        // Every node of a circulant has the same portless view: one class.
        let g = circulant(9, &[1, 2]).unwrap().with_uniform_label(0u8);
        // (Cross-crate check lives in anonet-views; here assert regularity.)
        assert!(g.graph().nodes().all(|v| g.graph().degree(v) == 4));
    }

    #[test]
    fn petersen_is_three_regular() {
        let g = petersen();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 3));
    }

    #[test]
    fn random_tree_is_a_tree() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for n in [1usize, 2, 3, 10, 40] {
            let g = random_tree(n, &mut rng).unwrap();
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), n.saturating_sub(1));
            assert!(g.is_connected());
        }
    }

    #[test]
    fn gnp_is_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for &(n, p) in &[(1usize, 0.5), (10, 0.0), (20, 0.1), (20, 0.5)] {
            let g = gnp_connected(n, p, &mut rng).unwrap();
            assert_eq!(g.node_count(), n);
            assert!(g.is_connected());
        }
        assert!(gnp_connected(5, 1.5, &mut rng).is_err());
    }

    #[test]
    fn random_regular_is_regular_and_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = random_regular(12, 3, 200, &mut rng).unwrap();
        assert!(g.nodes().all(|v| g.degree(v) == 3));
        assert!(g.is_connected());
    }

    #[test]
    fn random_regular_rejects_impossible() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(random_regular(5, 3, 10, &mut rng).is_err()); // odd n*d
        assert!(random_regular(4, 4, 10, &mut rng).is_err()); // d >= n
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let g1 = random_tree(15, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        let g2 = random_tree(15, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        assert_eq!(g1, g2);
    }
}
