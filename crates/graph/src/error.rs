//! Error type for graph construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced by graph construction, labeling, and validation.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referred to a node index `>= n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied; the model only considers simple graphs.
    LoopEdge {
        /// The node with the self-loop.
        node: usize,
    },
    /// The same undirected edge was supplied twice.
    ParallelEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// The graph is not connected; the model only considers connected graphs.
    Disconnected,
    /// A graph with zero nodes was requested.
    Empty,
    /// The number of labels does not match the number of nodes.
    LabelCountMismatch {
        /// Number of labels supplied.
        labels: usize,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// A permutation vector was not a bijection on `0..m`.
    InvalidPermutation {
        /// Length of the permutation vector.
        len: usize,
    },
    /// A generator was asked for parameters outside its domain
    /// (e.g. a cycle on fewer than 3 nodes).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A randomized generator exhausted its retry budget without producing
    /// a graph with the requested property (e.g. a connected lift).
    RetriesExhausted {
        /// What was being generated.
        what: String,
        /// How many attempts were made.
        attempts: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node index {node} out of range for graph with {n} nodes")
            }
            GraphError::LoopEdge { node } => {
                write!(f, "self-loop at node {node}; only simple graphs are supported")
            }
            GraphError::ParallelEdge { u, v } => {
                write!(f, "parallel edge ({u}, {v}); only simple graphs are supported")
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::Empty => write!(f, "graph must have at least one node"),
            GraphError::LabelCountMismatch { labels, nodes } => {
                write!(f, "{labels} labels supplied for a graph with {nodes} nodes")
            }
            GraphError::InvalidPermutation { len } => {
                write!(f, "permutation of length {len} is not a bijection on 0..{len}")
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
            GraphError::RetriesExhausted { what, attempts } => {
                write!(f, "failed to generate {what} after {attempts} attempts")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = vec![
            GraphError::NodeOutOfRange { node: 5, n: 3 },
            GraphError::LoopEdge { node: 1 },
            GraphError::ParallelEdge { u: 0, v: 1 },
            GraphError::Disconnected,
            GraphError::Empty,
            GraphError::LabelCountMismatch { labels: 2, nodes: 3 },
            GraphError::InvalidPermutation { len: 4 },
            GraphError::InvalidParameter { reason: "n < 3".into() },
            GraphError::RetriesExhausted { what: "a connected lift".into(), attempts: 7 },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase() || msg.starts_with(char::is_numeric)
            );
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(GraphError::Disconnected);
        assert_eq!(e.to_string(), "graph is not connected");
    }
}
