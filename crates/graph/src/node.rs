//! Node and port identifiers.

use std::fmt;

/// Identifier of a node in a [`Graph`](crate::Graph).
///
/// Node identifiers are dense indices `0..n`. They exist only on the
/// *simulator* side: the distributed algorithms executed on top of the
/// graph are anonymous and never observe a [`NodeId`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` (graphs that large are far
    /// outside this crate's scope).
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        NodeId(index)
    }
}

/// A local port number distinguishing the incident edges of a node.
///
/// Node `v` with degree `d` has ports `0..d`; port `p` corresponds to the
/// `p`-th entry of `v`'s adjacency list. Ports are the only means by which
/// an anonymous node distinguishes its neighbors (paper, Section 1.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Port(u32);

impl Port {
    /// Creates a port from its local index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[inline]
    pub fn new(index: usize) -> Self {
        Port(u32::try_from(index).expect("port index exceeds u32::MAX"))
    }

    /// Returns the local index of this port.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for Port {
    fn from(index: u32) -> Self {
        Port(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.to_string(), "v42");
        assert_eq!(NodeId::from(42u32), v);
    }

    #[test]
    fn port_roundtrip() {
        let p = Port::new(3);
        assert_eq!(p.index(), 3);
        assert_eq!(p.to_string(), "p3");
        assert_eq!(Port::from(3u32), p);
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(Port::new(0) < Port::new(1));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId::new(0));
        assert_eq!(Port::default(), Port::new(0));
    }
}
