//! BFS distances, balls `H^i(v)`, and diameter computations.

use crate::graph::Graph;
use crate::node::NodeId;

/// BFS distances from `source`; `None` for unreachable nodes.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Option<usize>> {
    let n = g.node_count();
    let mut dist = vec![None; n];
    dist[source.index()] = Some(0);
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()].expect("queued nodes have distances");
        for &u in g.neighbors(v) {
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(d + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Hop distance between `u` and `v`, or `None` if disconnected.
pub fn distance(g: &Graph, u: NodeId, v: NodeId) -> Option<usize> {
    bfs_distances(g, u)[v.index()]
}

/// The ball `H^r(v)`: all nodes at distance at most `r` from `v`,
/// in ascending node order.
///
/// The paper uses `H^i(v)` in the proof of Lemma 9 to track how far
/// prescribed random bits must agree for the first `t` rounds of an
/// execution to be determined.
pub fn ball(g: &Graph, v: NodeId, r: usize) -> Vec<NodeId> {
    bfs_distances(g, v)
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_some_and(|d| d <= r))
        .map(|(i, _)| NodeId::new(i))
        .collect()
}

/// Eccentricity of `v` (greatest distance to any node), or `None` if the
/// graph is disconnected.
pub fn eccentricity(g: &Graph, v: NodeId) -> Option<usize> {
    bfs_distances(g, v).into_iter().try_fold(0usize, |acc, d| d.map(|d| acc.max(d)))
}

/// Diameter of the graph, or `None` if disconnected.
///
/// Runs a BFS from every node (`O(n·m)`), fine at simulator scale.
pub fn diameter(g: &Graph) -> Option<usize> {
    g.nodes().try_fold(0usize, |acc, v| eccentricity(g, v).map(|e| acc.max(e)))
}

/// All unordered pairs of distinct nodes at distance at most `k`.
///
/// This is the constraint set of a *k-hop coloring*: a labeling is a k-hop
/// coloring iff it assigns distinct labels to every pair returned here.
pub fn pairs_within(g: &Graph, k: usize) -> Vec<(NodeId, NodeId)> {
    let mut pairs = Vec::new();
    for v in g.nodes() {
        for u in ball(g, v, k) {
            if v < u {
                pairs.push((v, u));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn distances_on_path() {
        let g = generators::path(5).unwrap();
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        assert_eq!(distance(&g, NodeId::new(1), NodeId::new(4)), Some(3));
    }

    #[test]
    fn distances_on_cycle_wrap() {
        let g = generators::cycle(6).unwrap();
        assert_eq!(distance(&g, NodeId::new(0), NodeId::new(5)), Some(1));
        assert_eq!(distance(&g, NodeId::new(0), NodeId::new(3)), Some(3));
    }

    #[test]
    fn unreachable_is_none() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(distance(&g, NodeId::new(0), NodeId::new(2)), None);
        assert_eq!(eccentricity(&g, NodeId::new(0)), None);
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn ball_grows_monotonically() {
        let g = generators::cycle(8).unwrap();
        let v = NodeId::new(0);
        let b0 = ball(&g, v, 0);
        let b1 = ball(&g, v, 1);
        let b2 = ball(&g, v, 2);
        assert_eq!(b0, vec![v]);
        assert_eq!(b1.len(), 3);
        assert_eq!(b2.len(), 5);
        assert!(b1.iter().all(|u| b2.contains(u)));
    }

    #[test]
    fn diameter_of_known_graphs() {
        assert_eq!(diameter(&generators::path(5).unwrap()), Some(4));
        assert_eq!(diameter(&generators::cycle(6).unwrap()), Some(3));
        assert_eq!(diameter(&generators::complete(4).unwrap()), Some(1));
        assert_eq!(diameter(&generators::petersen()), Some(2));
    }

    #[test]
    fn pairs_within_counts() {
        let g = generators::cycle(6).unwrap();
        // k=1: exactly the 6 edges
        assert_eq!(pairs_within(&g, 1).len(), 6);
        // k=2: edges plus 6 distance-2 pairs
        assert_eq!(pairs_within(&g, 2).len(), 12);
    }
}
