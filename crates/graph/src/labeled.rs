//! Labeled graphs `G = (V, E, ℓ)`.

use std::fmt;

use crate::error::GraphError;
use crate::graph::Graph;
use crate::labels::Label;
use crate::node::NodeId;
use crate::Result;

/// A graph together with a labeling function `ℓ : V → L`.
///
/// Multiple labelings `ℓ₁, …, ℓ_k` are modeled as a single labeling by
/// tuples, exactly as in the paper (Section 1.1): use [`LabeledGraph::zip`]
/// to combine and [`LabeledGraph::map_labels`] to project.
///
/// # Example
///
/// ```
/// use anonet_graph::generators;
///
/// # fn main() -> Result<(), anonet_graph::GraphError> {
/// let c6 = generators::cycle(6)?;
/// let input = c6.with_uniform_label(0u8);
/// let colors = c6.with_labels(vec![1u32, 2, 3, 1, 2, 3])?;
/// let combined = input.zip(&colors)?; // labels are (u8, u32) pairs
/// assert_eq!(*combined.label(anonet_graph::NodeId::new(1)), (0u8, 2u32));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LabeledGraph<L> {
    graph: Graph,
    labels: Vec<L>,
}

impl<L: Label> LabeledGraph<L> {
    /// Creates a labeled graph; `labels[i]` labels node `i`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::LabelCountMismatch`] if the label count does
    /// not match the node count.
    pub fn new(graph: Graph, labels: Vec<L>) -> Result<Self> {
        if labels.len() != graph.node_count() {
            return Err(GraphError::LabelCountMismatch {
                labels: labels.len(),
                nodes: graph.node_count(),
            });
        }
        Ok(LabeledGraph { graph, labels })
    }

    /// The underlying unlabeled graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The label of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label(&self, v: NodeId) -> &L {
        &self.labels[v.index()]
    }

    /// All labels, indexed by node.
    pub fn labels(&self) -> &[L] {
        &self.labels
    }

    /// Consumes the labeled graph, returning its parts.
    pub fn into_parts(self) -> (Graph, Vec<L>) {
        (self.graph, self.labels)
    }

    /// Number of nodes (delegates to the graph).
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Applies `f` to every label, keeping the topology.
    pub fn map_labels<M: Label>(&self, f: impl FnMut(&L) -> M) -> LabeledGraph<M> {
        LabeledGraph { graph: self.graph.clone(), labels: self.labels.iter().map(f).collect() }
    }

    /// Combines two labelings of the *same* graph into a tuple labeling.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if the two labeled graphs
    /// have different topologies (node sets, edges, or port numberings).
    pub fn zip<M: Label>(&self, other: &LabeledGraph<M>) -> Result<LabeledGraph<(L, M)>> {
        if self.graph != other.graph {
            return Err(GraphError::InvalidParameter {
                reason: "zip requires identical topologies and port numberings".into(),
            });
        }
        let labels = self.labels.iter().cloned().zip(other.labels.iter().cloned()).collect();
        Ok(LabeledGraph { graph: self.graph.clone(), labels })
    }

    /// The number of *distinct* labels in use.
    pub fn distinct_label_count(&self) -> usize {
        let mut sorted: Vec<&L> = self.labels.iter().collect();
        sorted.sort();
        sorted.dedup();
        sorted.len()
    }

    /// Replaces the label of a single node, returning a new graph.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn with_label_at(&self, v: NodeId, label: L) -> Self {
        let mut labels = self.labels.clone();
        labels[v.index()] = label;
        LabeledGraph { graph: self.graph.clone(), labels }
    }

    /// Renumbers the nodes so that `v` becomes `perm.apply(v)`, carrying
    /// each label along with its node. Port orderings move with the nodes,
    /// so the result is the same labeled port-numbered network presented
    /// under different (invisible) node indices.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidPermutation`] if `perm` is not over
    /// `node_count()` elements.
    pub fn renumber(&self, perm: &crate::lift::Perm) -> Result<Self> {
        let graph = self.graph.renumber(perm)?;
        let mut labels = self.labels.clone();
        for (v, l) in self.labels.iter().enumerate() {
            labels[perm.apply(v)] = l.clone();
        }
        Ok(LabeledGraph { graph, labels })
    }

    /// Re-draws every node's local port numbering uniformly at random,
    /// keeping topology and labels. Anonymous algorithms' *outputs* must be
    /// invariant under this transformation whenever they are invariant
    /// under the adversarial port numbering of the model.
    // anonet-lint: allow(randomness, reason = "seeded adversarial port shuffling builds test instances, not pipeline state")
    pub fn with_shuffled_ports<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Self {
        LabeledGraph { graph: self.graph.with_shuffled_ports(rng), labels: self.labels.clone() }
    }
}

impl<L: Label> fmt::Display for LabeledGraph<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LabeledGraph(n={}, m={}, distinct labels={})",
            self.graph.node_count(),
            self.graph.edge_count(),
            self.distinct_label_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn label_count_must_match() {
        let g = generators::cycle(4).unwrap();
        let err = g.with_labels(vec![1u8, 2]).unwrap_err();
        assert_eq!(err, GraphError::LabelCountMismatch { labels: 2, nodes: 4 });
    }

    #[test]
    fn map_and_zip() {
        let g = generators::path(3).unwrap();
        let a = g.with_labels(vec![1u8, 2, 3]).unwrap();
        let b = a.map_labels(|l| u32::from(l * 10));
        assert_eq!(b.labels(), &[10, 20, 30]);
        let z = a.zip(&b).unwrap();
        assert_eq!(*z.label(NodeId::new(2)), (3u8, 30u32));
    }

    #[test]
    fn zip_rejects_different_topologies() {
        let p = generators::path(3).unwrap().with_uniform_label(0u8);
        let c = generators::cycle(3).unwrap().with_uniform_label(0u8);
        assert!(p.zip(&c).is_err());
    }

    #[test]
    fn distinct_label_count_counts_unique() {
        let g = generators::cycle(6).unwrap();
        let lg = g.with_labels(vec![1u8, 2, 3, 1, 2, 3]).unwrap();
        assert_eq!(lg.distinct_label_count(), 3);
        assert_eq!(g.with_uniform_label(7u8).distinct_label_count(), 1);
    }

    #[test]
    fn with_label_at_replaces_one() {
        let g = generators::path(3).unwrap();
        let lg = g.with_uniform_label(0u8).with_label_at(NodeId::new(1), 9);
        assert_eq!(lg.labels(), &[0, 9, 0]);
    }

    #[test]
    fn renumber_moves_labels_with_nodes() {
        use crate::lift::Perm;
        let g = generators::path(3).unwrap();
        let lg = g.with_labels(vec![10u8, 20, 30]).unwrap();
        let perm = Perm::new(vec![2, 0, 1]).unwrap();
        let h = lg.renumber(&perm).unwrap();
        // Node 0 (label 10) became node 2, etc.
        assert_eq!(h.labels(), &[20, 30, 10]);
        // Degrees follow the relabeling: old node 1 was the path center.
        assert_eq!(h.graph().degree(NodeId::new(0)), 2);
        assert!(lg.renumber(&Perm::identity(2)).is_err());
    }

    #[test]
    fn zip_rejects_same_topology_with_different_port_numbering() {
        use crate::lift::Perm;
        use rand::SeedableRng;
        let g = generators::cycle(5).unwrap();
        let a = g.with_uniform_label(0u8);
        // Same node set and edge set, but node 0's two ports are swapped:
        // a *malformed* pairing for zip, which requires identical networks.
        let mut perms = vec![Perm::new(vec![1, 0]).unwrap()];
        perms.extend((1..5).map(|_| Perm::identity(2)));
        let b = g.with_ports_permuted(&perms).unwrap().with_uniform_label(1u32);
        assert!(a.zip(&b).is_err());
        // And a randomly re-ported copy keeps labels but changes ports.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let c = a.with_shuffled_ports(&mut rng);
        assert_eq!(c.labels(), a.labels());
        assert_eq!(c.graph().edge_count(), a.graph().edge_count());
    }

    #[test]
    fn into_parts_roundtrip() {
        let g = generators::path(2).unwrap();
        let lg = g.with_labels(vec![5u8, 6]).unwrap();
        let (graph, labels) = lg.into_parts();
        assert_eq!(graph.node_count(), 2);
        assert_eq!(labels, vec![5, 6]);
    }
}
