//! The [`Label`] trait: what a node label must support.

use std::fmt::Debug;
use std::hash::Hash;

/// A node label.
///
/// The paper models labels as finite bitstrings; this trait captures the
/// operations the machinery actually needs: equality and hashing (view
/// refinement), a total order (the canonical orders of Sections 2.1/3.1),
/// and a deterministic, **injective** byte encoding (the `s(G_*)` encodings
/// used to order finite view graphs).
///
/// `encode` must be *self-delimiting in context*: encoding a sequence of
/// labels by concatenation must remain injective. All provided
/// implementations achieve this with fixed-width or length-prefixed
/// encodings.
///
/// # Example
///
/// ```
/// use anonet_graph::Label;
///
/// let mut out = Vec::new();
/// 7u32.encode(&mut out);
/// (true, 7u32).encode(&mut out);
/// assert!(!out.is_empty());
/// ```
pub trait Label: Clone + Eq + Ord + Hash + Debug {
    /// Appends a deterministic, injective byte encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

macro_rules! impl_label_for_int {
    ($($t:ty),*) => {
        $(
            impl Label for $t {
                fn encode(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_be_bytes());
                }
            }
        )*
    };
}

impl_label_for_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Label for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u64).to_be_bytes());
    }
}

impl Label for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Label for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
}

impl Label for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl<L: Label> Label for Option<L> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(l) => {
                out.push(1);
                l.encode(out);
            }
        }
    }
}

impl<L: Label> Label for Vec<L> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for l in self {
            l.encode(out);
        }
    }
}

impl<A: Label, B: Label> Label for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: Label, B: Label, C: Label> Label for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
}

impl<A: Label, B: Label, C: Label, D: Label> Label for (A, B, C, D) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
        self.3.encode(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_encodings_are_fixed_width() {
        assert_eq!(1u8.encoded().len(), 1);
        assert_eq!(1u32.encoded().len(), 4);
        assert_eq!(1u64.encoded().len(), 8);
        assert_eq!(1usize.encoded().len(), 8);
    }

    #[test]
    fn int_encoding_preserves_order() {
        // Big-endian encodings compare like the integers themselves.
        for a in 0..50u32 {
            for b in 0..50u32 {
                assert_eq!(a.cmp(&b), a.encoded().cmp(&b.encoded()));
            }
        }
    }

    #[test]
    fn string_encoding_is_length_prefixed() {
        // "a" then "b" must differ from "ab" then "".
        let mut e1 = Vec::new();
        "a".to_string().encode(&mut e1);
        "b".to_string().encode(&mut e1);
        let mut e2 = Vec::new();
        "ab".to_string().encode(&mut e2);
        String::new().encode(&mut e2);
        assert_ne!(e1, e2);
    }

    #[test]
    fn option_encoding_distinguishes_none() {
        assert_ne!(None::<u8>.encoded(), Some(0u8).encoded());
    }

    #[test]
    fn tuple_encoding_concatenates() {
        let mut expect = Vec::new();
        1u16.encode(&mut expect);
        true.encode(&mut expect);
        assert_eq!((1u16, true).encoded(), expect);
    }

    #[test]
    fn vec_encoding_is_injective_across_splits() {
        let a = vec![vec![1u8, 2], vec![3u8]];
        let b = vec![vec![1u8], vec![2u8, 3]];
        assert_ne!(a.encoded(), b.encoded());
    }

    #[test]
    fn unit_label_encodes_to_nothing() {
        assert!(().encoded().is_empty());
    }
}
