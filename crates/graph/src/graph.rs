//! The port-numbered simple graph at the heart of the model.

use std::fmt;

use crate::error::GraphError;
use crate::labeled::LabeledGraph;
use crate::labels::Label;
use crate::node::{NodeId, Port};
use crate::Result;

/// An undirected edge, stored with `u <= v`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Edge {
    /// The smaller endpoint.
    pub u: NodeId,
    /// The larger endpoint.
    pub v: NodeId,
}

impl Edge {
    /// Creates an edge, normalizing endpoint order.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (simple graphs have no loops).
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "loop edges are not allowed in simple graphs");
        if u < v {
            Edge { u, v }
        } else {
            Edge { u: v, v: u }
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

/// A finite simple undirected graph with an implicit port numbering.
///
/// Port `p` of node `v` is the `p`-th entry of `v`'s adjacency list, so a
/// `Graph` value pins down not only the topology but also the port
/// numbering that anonymous algorithms observe (paper, Section 1.1: "`v`
/// distinguishes between the ports corresponding to its incident edges").
///
/// Graphs are immutable after construction; build them with
/// [`GraphBuilder`] or the [`generators`](crate::generators) module.
///
/// # Example
///
/// ```
/// use anonet_graph::{Graph, NodeId};
///
/// # fn main() -> Result<(), anonet_graph::GraphError> {
/// let triangle = Graph::builder(3).edge(0, 1)?.edge(1, 2)?.edge(0, 2)?.build()?;
/// assert_eq!(triangle.node_count(), 3);
/// assert_eq!(triangle.edge_count(), 3);
/// assert_eq!(triangle.degree(NodeId::new(0)), 2);
/// assert!(triangle.is_connected());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Graph {
    /// `adj[v]` lists the neighbors of `v`; index = port number.
    adj: Vec<Vec<NodeId>>,
}

impl Graph {
    /// Starts building a graph with `n` nodes.
    pub fn builder(n: usize) -> GraphBuilder {
        GraphBuilder::new(n)
    }

    /// Builds a graph directly from an edge list over `n` nodes.
    ///
    /// Ports are assigned in edge-insertion order.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty graph, out-of-range endpoints, loops,
    /// or parallel edges. Connectivity is **not** required here; use
    /// [`Graph::is_connected`] or build through generators when you need it.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b = b.edge(u, v)?;
        }
        b.build_unconnected()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterates over all node identifiers `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len()).map(NodeId::new)
    }

    /// Neighbors of `v` in port order (`Γ(v)`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v.index()]
    }

    /// The neighbor of `v` reached through `port`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `port` is out of range.
    pub fn endpoint(&self, v: NodeId, port: Port) -> NodeId {
        self.adj[v.index()][port.index()]
    }

    /// The port of `v` that leads to `u`, if `(v, u)` is an edge.
    pub fn port_to(&self, v: NodeId, u: NodeId) -> Option<Port> {
        self.adj[v.index()].iter().position(|&w| w == u).map(Port::new)
    }

    /// The port on the *other* side of the edge `(v, endpoint(v, port))`,
    /// i.e. the port through which the neighbor sees `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `port` is out of range.
    pub fn reverse_port(&self, v: NodeId, port: Port) -> Port {
        let u = self.endpoint(v, port);
        self.port_to(u, v).expect("adjacency lists are symmetric by construction")
    }

    /// `true` if `(u, v)` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u.index()].contains(&v)
    }

    /// Iterates over all undirected edges, each reported once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = NodeId::new(u);
            nbrs.iter().filter(move |&&v| u < v).map(move |&v| Edge { u, v })
        })
    }

    /// `true` if the graph is connected (every graph with one node is).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return false;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &u in self.neighbors(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == n
    }

    /// Validates connectivity, returning the graph's error otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if the graph is not connected.
    pub fn require_connected(&self) -> Result<()> {
        if self.is_connected() {
            Ok(())
        } else {
            Err(GraphError::Disconnected)
        }
    }

    /// Attaches labels to the nodes, producing a [`LabeledGraph`].
    ///
    /// `labels[i]` becomes the label of node `i`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::LabelCountMismatch`] if `labels.len()` differs
    /// from the node count.
    pub fn with_labels<L: Label>(&self, labels: Vec<L>) -> Result<LabeledGraph<L>> {
        LabeledGraph::new(self.clone(), labels)
    }

    /// Attaches the *same* label to every node.
    pub fn with_uniform_label<L: Label>(&self, label: L) -> LabeledGraph<L> {
        LabeledGraph::new(self.clone(), vec![label; self.node_count()])
            .expect("label count matches by construction")
    }

    /// Attaches each node's degree as its label.
    ///
    /// The paper assumes every input label includes the node's degree
    /// (Section 1.1); this is the minimal such labeling.
    pub fn with_degree_labels(&self) -> LabeledGraph<u32> {
        let labels = self.nodes().map(|v| self.degree(v) as u32).collect();
        LabeledGraph::new(self.clone(), labels).expect("label count matches by construction")
    }

    /// Renames the nodes by a permutation (`v` becomes `perm.apply(v)`),
    /// preserving every node's port order — the renamed graph is the same
    /// anonymous network in a different presentation, which is exactly what
    /// anonymous algorithms must be blind to (the testkit's renumbering
    /// metamorphic oracle rests on this).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidPermutation`] if `perm` is not a
    /// permutation of the node set.
    pub fn renumber(&self, perm: &crate::lift::Perm) -> Result<Graph> {
        let n = self.node_count();
        if perm.len() != n {
            return Err(GraphError::InvalidPermutation { len: perm.len() });
        }
        let mut adj = vec![Vec::new(); n];
        for v in self.nodes() {
            adj[perm.apply(v.index())] =
                self.adj[v.index()].iter().map(|u| NodeId::new(perm.apply(u.index()))).collect();
        }
        Ok(Graph { adj })
    }

    /// Re-permutes the port numbering of every node: new port `p` of `v`
    /// leads to the neighbor behind old port `perms[v].apply(p)`. The
    /// topology and node names are untouched — only the local edge order
    /// each node observes changes (the paper's "worst-case port orderings"
    /// are a choice of these permutations).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidPermutation`] if `perms` does not hold
    /// one permutation per node with degree-matching length.
    pub fn with_ports_permuted(&self, perms: &[crate::lift::Perm]) -> Result<Graph> {
        if perms.len() != self.node_count() {
            return Err(GraphError::InvalidPermutation { len: perms.len() });
        }
        let mut adj = Vec::with_capacity(self.node_count());
        for v in self.nodes() {
            let d = self.degree(v);
            let perm = &perms[v.index()];
            if perm.len() != d {
                return Err(GraphError::InvalidPermutation { len: perm.len() });
            }
            adj.push((0..d).map(|p| self.adj[v.index()][perm.apply(p)]).collect());
        }
        Ok(Graph { adj })
    }

    /// Re-permutes every node's ports uniformly at random — a seeded
    /// source of adversarial port numberings.
    // anonet-lint: allow(randomness, reason = "seeded adversarial port shuffling builds test instances, not pipeline state")
    pub fn with_shuffled_ports<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let perms: Vec<crate::lift::Perm> =
            self.nodes().map(|v| crate::lift::Perm::random(self.degree(v), rng)).collect();
        self.with_ports_permuted(&perms).expect("per-node permutations match degrees")
    }

    /// Internal constructor from validated adjacency lists.
    pub(crate) fn from_adjacency_unchecked(adj: Vec<Vec<NodeId>>) -> Self {
        Graph { adj }
    }

    /// Builds a graph from explicit adjacency lists, validating that the
    /// result is a simple symmetric graph. The order of each list becomes
    /// the port numbering of that node.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty node set, out-of-range entries,
    /// loops, duplicate neighbors, or asymmetric adjacency.
    pub fn from_adjacency(adj: Vec<Vec<NodeId>>) -> Result<Self> {
        let n = adj.len();
        if n == 0 {
            return Err(GraphError::Empty);
        }
        for (v, nbrs) in adj.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for &u in nbrs {
                if u.index() >= n {
                    return Err(GraphError::NodeOutOfRange { node: u.index(), n });
                }
                if u.index() == v {
                    return Err(GraphError::LoopEdge { node: v });
                }
                if !seen.insert(u) {
                    return Err(GraphError::ParallelEdge { u: v, v: u.index() });
                }
                if !adj[u.index()].contains(&NodeId::new(v)) {
                    return Err(GraphError::InvalidParameter {
                        reason: format!(
                            "adjacency not symmetric: {v} lists {u} but not vice versa"
                        ),
                    });
                }
            }
        }
        Ok(Graph { adj })
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.node_count(), self.edge_count())
    }
}

/// Incremental builder for [`Graph`].
///
/// Edges are inserted in call order, which determines port numbers: the
/// first edge incident to `v` occupies port 0 of `v`, and so on.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    adj: Vec<Vec<NodeId>>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder { adj: vec![Vec::new(); n] }
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, `u == v`, or the
    /// edge already exists.
    pub fn edge(mut self, u: usize, v: usize) -> Result<Self> {
        let n = self.adj.len();
        if u >= n {
            return Err(GraphError::NodeOutOfRange { node: u, n });
        }
        if v >= n {
            return Err(GraphError::NodeOutOfRange { node: v, n });
        }
        if u == v {
            return Err(GraphError::LoopEdge { node: u });
        }
        if self.adj[u].contains(&NodeId::new(v)) {
            return Err(GraphError::ParallelEdge { u, v });
        }
        self.adj[u].push(NodeId::new(v));
        self.adj[v].push(NodeId::new(u));
        Ok(self)
    }

    /// Finishes building, requiring a connected non-empty graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] for zero nodes or
    /// [`GraphError::Disconnected`] if not connected.
    pub fn build(self) -> Result<Graph> {
        let g = self.build_unconnected()?;
        g.require_connected()?;
        Ok(g)
    }

    /// Finishes building without the connectivity requirement.
    ///
    /// Useful for intermediate constructions (e.g. lifts before their
    /// connectivity check).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] for zero nodes.
    pub fn build_unconnected(self) -> Result<Graph> {
        if self.adj.is_empty() {
            return Err(GraphError::Empty);
        }
        Ok(Graph::from_adjacency_unchecked(self.adj))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::builder(3).edge(0, 1).unwrap().edge(1, 2).unwrap().build().unwrap()
    }

    #[test]
    fn builder_rejects_bad_edges() {
        assert_eq!(
            Graph::builder(2).edge(0, 2).unwrap_err(),
            GraphError::NodeOutOfRange { node: 2, n: 2 }
        );
        assert_eq!(Graph::builder(2).edge(1, 1).unwrap_err(), GraphError::LoopEdge { node: 1 });
        assert_eq!(
            Graph::builder(2).edge(0, 1).unwrap().edge(1, 0).unwrap_err(),
            GraphError::ParallelEdge { u: 1, v: 0 }
        );
    }

    #[test]
    fn builder_requires_connectivity() {
        let err = Graph::builder(3).edge(0, 1).unwrap().build().unwrap_err();
        assert_eq!(err, GraphError::Disconnected);
        assert_eq!(Graph::builder(0).build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn single_node_is_connected() {
        let g = Graph::builder(1).build().unwrap();
        assert!(g.is_connected());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn ports_follow_insertion_order() {
        let g = path3();
        let v1 = NodeId::new(1);
        // node 1 saw edge (0,1) first, then (1,2)
        assert_eq!(g.endpoint(v1, Port::new(0)), NodeId::new(0));
        assert_eq!(g.endpoint(v1, Port::new(1)), NodeId::new(2));
        assert_eq!(g.port_to(v1, NodeId::new(2)), Some(Port::new(1)));
        assert_eq!(g.port_to(v1, NodeId::new(1)), None);
    }

    #[test]
    fn reverse_port_is_involutive() {
        let g = path3();
        for v in g.nodes() {
            for p in 0..g.degree(v) {
                let p = Port::new(p);
                let u = g.endpoint(v, p);
                let q = g.reverse_port(v, p);
                assert_eq!(g.endpoint(u, q), v);
                assert_eq!(g.reverse_port(u, q), p);
            }
        }
    }

    #[test]
    fn edges_reported_once() {
        let g = path3();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0], Edge::new(NodeId::new(0), NodeId::new(1)));
        assert_eq!(edges[1], Edge::new(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn edge_normalizes_order() {
        let e = Edge::new(NodeId::new(5), NodeId::new(2));
        assert_eq!(e.u, NodeId::new(2));
        assert_eq!(e.v, NodeId::new(5));
    }

    #[test]
    #[should_panic(expected = "loop edges")]
    fn edge_rejects_loops() {
        let _ = Edge::new(NodeId::new(1), NodeId::new(1));
    }

    #[test]
    fn from_edges_allows_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        assert_eq!(g.require_connected().unwrap_err(), GraphError::Disconnected);
    }

    #[test]
    fn degree_labels_match_degrees() {
        let g = path3();
        let lg = g.with_degree_labels();
        assert_eq!(lg.labels(), &[1, 2, 1]);
    }

    #[test]
    fn display_mentions_sizes() {
        assert_eq!(path3().to_string(), "Graph(n=3, m=2)");
    }

    #[test]
    fn renumber_preserves_structure_and_port_order() {
        use crate::lift::Perm;
        let g = path3();
        let perm = Perm::new(vec![2, 0, 1]).unwrap(); // v ↦ (v+2) mod 3
        let h = g.renumber(&perm).unwrap();
        assert_eq!(h.node_count(), 3);
        assert_eq!(h.edge_count(), 2);
        for v in g.nodes() {
            let w = NodeId::new(perm.apply(v.index()));
            assert_eq!(g.degree(v), h.degree(w));
            for p in 0..g.degree(v) {
                let p = Port::new(p);
                assert_eq!(h.endpoint(w, p).index(), perm.apply(g.endpoint(v, p).index()));
            }
        }
        // Wrong-size permutation is rejected.
        assert!(g.renumber(&Perm::identity(2)).is_err());
    }

    #[test]
    fn port_permutation_keeps_topology_but_not_ports() {
        use crate::lift::Perm;
        let g = path3();
        let perms = vec![Perm::identity(1), Perm::new(vec![1, 0]).unwrap(), Perm::identity(1)];
        let h = g.with_ports_permuted(&perms).unwrap();
        // Same edges...
        let mut a: Vec<Edge> = g.edges().collect();
        let mut b: Vec<Edge> = h.edges().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // ... but node 1's ports swapped.
        let v1 = NodeId::new(1);
        assert_eq!(h.endpoint(v1, Port::new(0)), g.endpoint(v1, Port::new(1)));
        assert_eq!(h.endpoint(v1, Port::new(1)), g.endpoint(v1, Port::new(0)));
        // Degree-mismatched and count-mismatched permutations are rejected.
        assert!(g.with_ports_permuted(&[Perm::identity(1), Perm::identity(1)]).is_err());
        assert!(g
            .with_ports_permuted(&[Perm::identity(2), Perm::identity(2), Perm::identity(1)])
            .is_err());
    }

    #[test]
    fn shuffled_ports_stay_valid() {
        use rand::SeedableRng;
        let g = crate::generators::petersen();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let h = g.with_shuffled_ports(&mut rng);
        assert_eq!(g.node_count(), h.node_count());
        assert_eq!(g.edge_count(), h.edge_count());
        for v in h.nodes() {
            for p in 0..h.degree(v) {
                let p = Port::new(p);
                // reverse_port still works: adjacency stayed symmetric.
                assert_eq!(h.reverse_port(h.endpoint(v, p), h.reverse_port(v, p)), p);
            }
        }
    }

    #[test]
    fn from_adjacency_rejects_malformed_port_numberings() {
        let node = |i: usize| NodeId::new(i);
        // Asymmetric: 0 lists 1 but 1 does not list 0.
        let err = Graph::from_adjacency(vec![vec![node(1)], vec![]]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidParameter { .. }));
        // Duplicate neighbor = two ports to the same edge.
        let err = Graph::from_adjacency(vec![vec![node(1), node(1)], vec![node(0), node(0)]])
            .unwrap_err();
        assert!(matches!(err, GraphError::ParallelEdge { .. }));
        // Self-loop port.
        let err = Graph::from_adjacency(vec![vec![node(0)]]).unwrap_err();
        assert!(matches!(err, GraphError::LoopEdge { node: 0 }));
        // Out-of-range port target.
        let err = Graph::from_adjacency(vec![vec![node(7)]]).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 7, .. }));
    }
}
