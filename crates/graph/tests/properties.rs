//! Property-based tests for the graph substrate.

use anonet_graph::{
    canonical, coloring, distance, generators, iso, lift, BitString, Graph, NodeId,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn random_graph(seed: u64, n: usize, flavor: u8) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match flavor % 3 {
        0 => generators::gnp_connected(n, 0.35, &mut rng).expect("valid"),
        1 => generators::random_tree(n, &mut rng).expect("valid"),
        _ => generators::cycle(n.max(3)).expect("valid"),
    }
}

/// Applies a node permutation to a graph, producing an isomorphic copy.
fn permuted(g: &Graph, perm: &[usize]) -> Graph {
    let edges: Vec<(usize, usize)> =
        g.edges().map(|e| (perm[e.u.index()], perm[e.v.index()])).collect();
    Graph::from_edges(g.node_count(), &edges).expect("permutation preserves simplicity")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Reverse ports are involutive and endpoint-consistent on every graph.
    #[test]
    fn ports_are_consistent(seed in 0u64..10_000, n in 2usize..20, flavor in 0u8..3) {
        let g = random_graph(seed, n, flavor);
        for v in g.nodes() {
            for p in 0..g.degree(v) {
                let p = anonet_graph::Port::new(p);
                let u = g.endpoint(v, p);
                let q = g.reverse_port(v, p);
                prop_assert_eq!(g.endpoint(u, q), v);
                prop_assert_eq!(g.reverse_port(u, q), p);
            }
        }
    }

    /// Permuted copies are isomorphic, and the found map verifies.
    #[test]
    fn permutations_give_isomorphic_graphs(seed in 0u64..10_000, n in 2usize..10, flavor in 0u8..3) {
        let g = random_graph(seed, n, flavor);
        let n = g.node_count();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xabcd);
        let perm = lift::Perm::random(n, &mut rng);
        let perm_vec: Vec<usize> = (0..n).map(|i| perm.apply(i)).collect();
        let h = permuted(&g, &perm_vec);
        let a = g.with_uniform_label(0u8);
        let b = h.with_uniform_label(0u8);
        let map = iso::find_isomorphism(&a, &b);
        prop_assert!(map.is_some());
        prop_assert!(iso::is_isomorphism(&a, &b, &map.unwrap()));
    }

    /// Greedy k-hop colorings validate for every k and respect the ball
    /// bound (palette at most the largest k-ball). Note the palette is
    /// *not* monotone in k — greedy is order-sensitive.
    #[test]
    fn greedy_colorings_validate(seed in 0u64..10_000, n in 2usize..16, flavor in 0u8..3) {
        let g = random_graph(seed, n, flavor);
        for k in 1..=3 {
            let colored = coloring::greedy_k_hop_coloring(&g, k);
            prop_assert!(coloring::is_k_hop_coloring(&colored, k));
            let max_ball = g.nodes().map(|v| distance::ball(&g, v, k).len()).max().unwrap();
            prop_assert!(coloring::color_count(&colored) <= max_ball);
        }
    }

    /// Lifts preserve degrees, have uniform fibers, and project locally
    /// isomorphically.
    #[test]
    fn lifts_are_coverings(seed in 0u64..10_000, n in 3usize..10, m in 2usize..4) {
        let g = generators::cycle(n).expect("valid");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let volt: Vec<lift::Perm> =
            (0..g.edge_count()).map(|_| lift::Perm::random(m, &mut rng)).collect();
        let l = lift::lift(&g, m, &volt).expect("valid lift");
        let big = l.graph();
        prop_assert_eq!(big.node_count(), n * m);
        prop_assert_eq!(big.edge_count(), g.edge_count() * m);
        for x in big.nodes() {
            let v = l.projection()[x.index()];
            prop_assert_eq!(big.degree(x), g.degree(v));
            let mut img: Vec<NodeId> =
                big.neighbors(x).iter().map(|y| l.projection()[y.index()]).collect();
            img.sort();
            let mut expect: Vec<NodeId> = g.neighbors(v).to_vec();
            expect.sort();
            prop_assert_eq!(img, expect);
        }
    }

    /// min_encoding is a canonical form on small graphs: equal across
    /// permuted presentations.
    #[test]
    fn min_encoding_is_permutation_invariant(seed in 0u64..10_000, n in 2usize..6, flavor in 0u8..3) {
        let g = random_graph(seed, n, flavor);
        let n = g.node_count();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x77);
        let perm = lift::Perm::random(n, &mut rng);
        let perm_vec: Vec<usize> = (0..n).map(|i| perm.apply(i)).collect();
        let h = permuted(&g, &perm_vec);
        prop_assert_eq!(
            canonical::min_encoding(&g.with_uniform_label(0u8)),
            canonical::min_encoding(&h.with_uniform_label(0u8))
        );
    }

    /// BFS distances satisfy the triangle inequality through any edge.
    #[test]
    fn distances_satisfy_triangle_inequality(seed in 0u64..10_000, n in 2usize..16, flavor in 0u8..3) {
        let g = random_graph(seed, n, flavor);
        let v0 = NodeId::new(0);
        let d = distance::bfs_distances(&g, v0);
        for e in g.edges() {
            let du = d[e.u.index()].expect("connected");
            let dv = d[e.v.index()].expect("connected");
            prop_assert!(du.abs_diff(dv) <= 1);
        }
    }

    /// Shortlex on bitstrings is a total order compatible with encoding.
    #[test]
    fn bitstring_order_is_total_and_consistent(a in 0u64..256, la in 0usize..9, b in 0u64..256, lb in 0usize..9) {
        let x = BitString::from_value(a & ((1 << la.max(1)) - 1), la);
        let y = BitString::from_value(b & ((1 << lb.max(1)) - 1), lb);
        use std::cmp::Ordering;
        match x.cmp(&y) {
            Ordering::Equal => prop_assert_eq!(&x, &y),
            Ordering::Less => prop_assert!(y > x.clone()),
            Ordering::Greater => prop_assert!(y < x.clone()),
        }
        // Prefixes are never greater in shortlex.
        if x.is_prefix_of(&y) {
            prop_assert!(x <= y);
        }
    }
}
