//! GRAN — *Genuinely solvable by Randomized algorithms in Anonymous
//! Networks* (paper, Section 1.1).
//!
//! A problem `Π` is in GRAN when both `Π` itself and the decision problem
//! `Δ_Π` ("is this labeled graph an instance of `Π`?") have Las-Vegas
//! anonymous solutions. This module packages that pair ([`Gran`]) and
//! implements the observation that makes `A_*`'s condition C3 decidable:
//! a Las-Vegas decider can be *derandomized by simulation* — enumerate
//! bit tapes until one produces outputs everywhere; any successful
//! Las-Vegas run is correct, so its verdict can be trusted
//! ([`decide_by_simulation`]).

use anonet_graph::{Label, LabeledGraph, NodeId};
use anonet_runtime::{
    run, BitAssignment, DecisionOutput, ExecConfig, Oblivious, ObliviousAlgorithm, Problem,
    TapeSource,
};

use crate::error::CoreError;
use crate::Result;

/// A GRAN membership witness: the problem `Π`, a Las-Vegas solver for it,
/// and a Las-Vegas decider for `Δ_Π`.
#[derive(Clone, Debug)]
pub struct Gran<P, S, D> {
    /// The problem specification.
    pub problem: P,
    /// A Las-Vegas anonymous algorithm solving `Π`.
    pub solver: S,
    /// A Las-Vegas anonymous algorithm solving `Δ_Π`.
    pub decider: D,
}

impl<P, S, D> Gran<P, S, D>
where
    P: Problem,
    S: ObliviousAlgorithm<Input = P::Input, Output = P::Output>,
    D: ObliviousAlgorithm<Input = P::Input, Output = DecisionOutput> + Clone,
    P::Input: Label,
{
    /// Bundles the three witnesses.
    pub fn new(problem: P, solver: S, decider: D) -> Self {
        Gran { problem, solver, decider }
    }

    /// Decides instance membership deterministically by simulating the
    /// decider (see [`decide_by_simulation`]).
    ///
    /// # Errors
    ///
    /// Propagates the search-budget error if no simulation succeeds.
    pub fn decide(
        &self,
        g: &LabeledGraph<P::Input>,
        max_total_bits: usize,
        config: &ExecConfig,
    ) -> Result<bool> {
        decide_by_simulation(&self.decider, g, max_total_bits, config)
    }
}

/// Derandomizes a Las-Vegas decider on one labeled graph: enumerates bit
/// assignments in the canonical order (length first, then lexicographic
/// in node-id order — any fixed order suffices here because this runs on
/// an explicitly given graph, not inside an anonymous node) and returns
/// the verdict of the first successful simulation.
///
/// Correctness: a Las-Vegas algorithm's *every* successful execution
/// produces a valid output, so the first successful simulation's verdict
/// is authoritative — this is exactly why `A_*` can check condition C3.
///
/// # Errors
///
/// [`CoreError::SearchBudgetExceeded`] when `n·t` exceeds
/// `max_total_bits` without a successful simulation.
pub fn decide_by_simulation<D>(
    decider: &D,
    g: &LabeledGraph<D::Input>,
    max_total_bits: usize,
    config: &ExecConfig,
) -> Result<bool>
where
    D: ObliviousAlgorithm<Output = DecisionOutput> + Clone,
    D::Input: Label,
{
    let n = g.node_count();
    let order: Vec<NodeId> = g.graph().nodes().collect();
    for t in 1.. {
        if n * t > max_total_bits {
            return Err(CoreError::SearchBudgetExceeded { quotient_nodes: n, max_total_bits });
        }
        for assignment in BitAssignment::empty(n).extensions(t, &order) {
            let mut src = TapeSource::new(assignment);
            let exec = run(&Oblivious(decider.clone()), g, &mut src, config)?;
            if exec.is_successful() {
                let verdict = exec.outputs_unwrapped().iter().all(|o| *o == DecisionOutput::Yes);
                return Ok(verdict);
            }
        }
    }
    unreachable!("the loop over t only exits via return")
}

/// The trivial decider for problems whose instance set is *every*
/// connected labeled graph (MIS, coloring, 2-hop coloring): all nodes
/// immediately answer Yes. Deterministic, one round.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrivialDecider<I> {
    _marker: std::marker::PhantomData<fn() -> I>,
}

impl<I> TrivialDecider<I> {
    /// Creates the decider.
    pub fn new() -> Self {
        TrivialDecider { _marker: std::marker::PhantomData }
    }
}

impl<I: Label + std::fmt::Debug> ObliviousAlgorithm for TrivialDecider<I> {
    type Input = I;
    type Message = ();
    type Output = DecisionOutput;
    type State = ();

    fn init(&self, _input: &I, _degree: usize) {}
    fn broadcast(&self, _state: &()) -> Option<()> {
        None
    }
    fn step(
        &self,
        _state: (),
        _round: usize,
        _received: &[()],
        _bit: bool,
        actions: &mut Actions<DecisionOutput>,
    ) {
        actions.output(DecisionOutput::Yes);
        actions.halt();
    }
}

use anonet_runtime::Actions;

/// GRAN witness for maximal independent set: the Las-Vegas solver plus
/// the trivial decider (every connected graph is an instance).
pub fn mis_witness() -> Gran<
    anonet_algorithms::problems::MisProblem,
    anonet_algorithms::mis::RandomizedMis,
    TrivialDecider<()>,
> {
    Gran::new(
        anonet_algorithms::problems::MisProblem,
        anonet_algorithms::mis::RandomizedMis::new(),
        TrivialDecider::new(),
    )
}

/// GRAN witness for greedy proper coloring.
pub fn coloring_witness() -> Gran<
    anonet_algorithms::problems::GreedyColoringProblem,
    anonet_algorithms::coloring::RandomizedColoring,
    TrivialDecider<()>,
> {
    Gran::new(
        anonet_algorithms::problems::GreedyColoringProblem,
        anonet_algorithms::coloring::RandomizedColoring::new(),
        TrivialDecider::new(),
    )
}

/// GRAN witness for 2-hop coloring — the paper's central problem.
pub fn two_hop_witness() -> Gran<
    anonet_algorithms::problems::TwoHopColoringProblem,
    anonet_algorithms::two_hop_coloring::TwoHopColoring,
    TrivialDecider<()>,
> {
    Gran::new(
        anonet_algorithms::problems::TwoHopColoringProblem,
        anonet_algorithms::two_hop_coloring::TwoHopColoring::new(),
        TrivialDecider::new(),
    )
}

/// GRAN witness for maximal matching on 2-hop colored instances: the
/// decider is the distributed 2-hop coloring verifier — instance
/// membership is exactly "the inputs 2-hop color the graph".
pub fn matching_witness() -> Gran<
    anonet_algorithms::matching::MatchingProblem,
    anonet_algorithms::matching::RandomizedMatching<u32>,
    anonet_algorithms::verify::TwoHopColoringVerifier<u32>,
> {
    Gran::new(
        anonet_algorithms::matching::MatchingProblem,
        anonet_algorithms::matching::RandomizedMatching::new(),
        anonet_algorithms::verify::TwoHopColoringVerifier::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_algorithms::mis::RandomizedMis;
    use anonet_algorithms::problems::MisProblem;
    use anonet_graph::generators;

    /// Deterministic decider for "every node is labeled 7": one round of
    /// local checking (no communication even needed; included to exercise
    /// the simulation path).
    #[derive(Clone, Debug)]
    struct AllSevens;

    impl ObliviousAlgorithm for AllSevens {
        type Input = u32;
        type Message = ();
        type Output = DecisionOutput;
        type State = u32;

        fn init(&self, input: &u32, _degree: usize) -> u32 {
            *input
        }
        fn broadcast(&self, _state: &u32) -> Option<()> {
            None
        }
        fn step(
            &self,
            state: u32,
            _round: usize,
            _received: &[()],
            _bit: bool,
            actions: &mut Actions<DecisionOutput>,
        ) -> u32 {
            actions.output(if state == 7 { DecisionOutput::Yes } else { DecisionOutput::No });
            actions.halt();
            state
        }
    }

    #[test]
    fn decide_by_simulation_returns_correct_verdicts() {
        let yes = generators::cycle(4).unwrap().with_uniform_label(7u32);
        let no = generators::cycle(4).unwrap().with_labels(vec![7, 7, 8, 7]).unwrap();
        let cfg = ExecConfig::default();
        assert!(decide_by_simulation(&AllSevens, &yes, 16, &cfg).unwrap());
        assert!(!decide_by_simulation(&AllSevens, &no, 16, &cfg).unwrap());
    }

    /// A decider that wastes one random bit per node before answering Yes
    /// — exercises the tape enumeration.
    #[derive(Clone, Debug)]
    struct CoinThenYes;

    impl ObliviousAlgorithm for CoinThenYes {
        type Input = u32;
        type Message = ();
        type Output = DecisionOutput;
        type State = bool;

        fn init(&self, _input: &u32, _degree: usize) -> bool {
            false
        }
        fn broadcast(&self, _state: &bool) -> Option<()> {
            None
        }
        fn step(
            &self,
            _state: bool,
            round: usize,
            _received: &[()],
            bit: bool,
            actions: &mut Actions<DecisionOutput>,
        ) -> bool {
            // Answer in round 2 only if round 1's coin was heads;
            // otherwise keep flipping (Las-Vegas delay).
            if round >= 2 || bit {
                actions.output(DecisionOutput::Yes);
                actions.halt();
            }
            bit
        }
    }

    #[test]
    fn simulation_search_handles_randomized_deciders() {
        let g = generators::path(3).unwrap().with_uniform_label(0u32);
        assert!(decide_by_simulation(&CoinThenYes, &g, 12, &ExecConfig::default()).unwrap());
    }

    #[test]
    fn budget_is_enforced() {
        /// Never outputs: no simulation ever succeeds.
        #[derive(Clone, Debug)]
        struct Mute;
        impl ObliviousAlgorithm for Mute {
            type Input = u32;
            type Message = ();
            type Output = DecisionOutput;
            type State = ();
            fn init(&self, _: &u32, _: usize) {}
            fn broadcast(&self, _: &()) -> Option<()> {
                None
            }
            fn step(&self, _: (), _: usize, _: &[()], _: bool, _: &mut Actions<DecisionOutput>) {}
        }
        let g = generators::path(2).unwrap().with_uniform_label(0u32);
        let err = decide_by_simulation(&Mute, &g, 6, &ExecConfig::with_max_rounds(10)).unwrap_err();
        assert!(matches!(err, CoreError::SearchBudgetExceeded { .. }));
    }

    #[test]
    fn witnesses_decide_membership_correctly() {
        let cfg = ExecConfig::default();
        // Unit-instance problems: everything is an instance.
        let g = generators::cycle(5).unwrap().with_uniform_label(());
        assert!(mis_witness().decide(&g, 16, &cfg).unwrap());
        assert!(coloring_witness().decide(&g, 16, &cfg).unwrap());
        assert!(two_hop_witness().decide(&g, 16, &cfg).unwrap());

        // Matching: instance iff the inputs 2-hop color the graph. The
        // decider's verdict must agree with the problem's predicate.
        use anonet_runtime::Problem;
        let w = matching_witness();
        let colored = anonet_graph::coloring::greedy_two_hop_coloring(&generators::petersen());
        assert!(w.decide(&colored, 40, &cfg).unwrap());
        assert!(w.problem.is_instance(&colored));
        let bad = generators::cycle(4).unwrap().with_labels(vec![1u32, 2, 1, 2]).unwrap();
        assert!(!w.decide(&bad, 16, &cfg).unwrap());
        assert!(!w.problem.is_instance(&bad));
    }

    #[test]
    fn gran_bundle_composes() {
        /// Trivial decider: every connected graph is a MIS instance.
        #[derive(Clone, Debug)]
        struct AlwaysYes;
        impl ObliviousAlgorithm for AlwaysYes {
            type Input = ();
            type Message = ();
            type Output = DecisionOutput;
            type State = ();
            fn init(&self, _: &(), _: usize) {}
            fn broadcast(&self, _: &()) -> Option<()> {
                None
            }
            fn step(
                &self,
                _: (),
                _: usize,
                _: &[()],
                _: bool,
                actions: &mut Actions<DecisionOutput>,
            ) {
                actions.output(DecisionOutput::Yes);
                actions.halt();
            }
        }
        let gran = Gran::new(MisProblem, RandomizedMis::new(), AlwaysYes);
        let g = generators::cycle(5).unwrap().with_uniform_label(());
        assert!(gran.decide(&g, 16, &ExecConfig::default()).unwrap());
        assert!(gran.problem.is_instance(&g));
    }
}
