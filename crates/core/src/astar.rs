//! `A_*` — the paper's Figure 3, faithfully.
//!
//! The deterministic algorithm proving Theorem 1 proceeds in phases
//! `p = 1, 2, …`; in phase `p` every node `v` independently runs:
//!
//! * **Update-Graph** — gather `L_p(v, I^p)` (the depth-`p` view of the
//!   instance augmented with the evolving bitstring labels `b^p`), build
//!   the set `𝓕` of *candidates* (graphs with ≤ `p` nodes, a matching
//!   view, and a legal `Π^c` part — see [`crate::candidates`] for why the
//!   enumeration over view labels is complete), and select the smallest
//!   finite view graph `Ĝ_*` under the `(|V̂_*|, s(Ĝ_*))` order;
//! * **Update-Output** — simulate `A_R` on `(V̂_*, Ê_*, î_*)` with the
//!   tapes `b̂_*`; on success adopt `v̊`'s output;
//! * **Update-Bits** — find the lexicographically smallest `p`-extension
//!   of `b̂_*` inducing a successful simulation and extend `b(v)`
//!   accordingly.
//!
//! Phase `p` of the real message-passing algorithm costs `p` rounds of
//! communication (gathering the view); this driver computes each node's
//! phase from its explicit [`ViewTree`] — every quantity is a function of
//! the view, which is the model-theoretic requirement — and reports the
//! equivalent round count.
//!
//! ## Engines
//!
//! Two engines compute the *same function*:
//!
//! * [`run_astar`] / [`run_astar_observed`] — the **fast path** (default):
//!   `Update-Graph` runs against the [`crate::astar_cache`] memo —
//!   candidate pools built once per `(p_capped, universe)`, the C2 scan
//!   replaced by one hash lookup against a per-depth selection index, and
//!   balls-by-radius hoisted out of the node loop;
//! * [`run_astar_reference`] / [`run_astar_reference_observed`] — the
//!   literal per-node enumeration, kept as the semantic baseline. The
//!   testkit's differential oracle pins `fast ≡ reference` byte-for-byte
//!   (outputs, output phases, final bits, phase counts) across problem
//!   families and adversarial schedules.
//!
//! [`run_astar_threaded`] additionally fans the per-node phase loop across
//! an [`anonet_batch`] scoped thread pool; results are committed in node
//! order, so the run is byte-identical at every thread count.
//!
//! On *successful* runs the engines agree exactly. On runs that abort with
//! a budget or view error the fast path may surface a different (equally
//! legitimate) error than the reference: it prepares pools for the whole
//! phase before building any node view, while the reference interleaves
//! the two per node — the reference is authoritative for error-order
//! fidelity. The candidate enumeration is doubly exponential by design (it
//! is in the paper, too); even the fast path is meant for the small
//! instances of experiments E3/E9/E17, with the engineering-grade path
//! provided by [`crate::derandomizer`].

use anonet_batch::{BatchScheduler, JobResult};
use anonet_graph::{distance, BitString, Label, LabeledGraph, NodeId};
use anonet_obs::{names, NoopRecorder, Recorder, SharedRecorder, Span};
use anonet_runtime::{
    run, BitAssignment, ExecConfig, Oblivious, ObliviousAlgorithm, Problem, TapeSource,
};
use anonet_views::{
    canonical_order, canonical_view_encoding, quotient, update_graph_cmp, ViewMode, ViewQuotient,
    ViewTree,
};

use crate::astar_cache::{AstarCache, CandidateLabel, PoolKey};
use crate::candidates::candidate_pool;
use crate::error::CoreError;
use crate::Result;

/// Budgets and knobs for [`run_astar`].
#[derive(Clone, Copy, Debug)]
pub struct AStarConfig {
    /// Hard cap on phases (the paper's `z + 1` must fall below it).
    pub max_phases: usize,
    /// Cap on candidate node counts (the paper's C1 allows up to `p`;
    /// enumeration beyond 4–5 nodes is infeasible). Must be at least the
    /// instance's quotient size for convergence.
    pub max_candidate_nodes: usize,
    /// Cap on total extension bits searched per `Update-Bits` call.
    pub max_extension_bits: usize,
    /// Execution config for the quotient simulations.
    pub sim_config: ExecConfig,
}

impl Default for AStarConfig {
    fn default() -> Self {
        AStarConfig {
            max_phases: 12,
            max_candidate_nodes: 4,
            max_extension_bits: 18,
            sim_config: ExecConfig::default(),
        }
    }
}

/// The outcome of running `A_*`.
#[derive(Clone, Debug)]
pub struct AStarRun<O> {
    /// Per-node outputs.
    pub outputs: Vec<O>,
    /// The phase in which the last node output (the paper's `z + 1`).
    pub phases_used: usize,
    /// Communication rounds of the message-level realization
    /// (`Σ_{p=1..phases} p`).
    pub equivalent_rounds: usize,
    /// Phase in which each node first output.
    pub output_phase: Vec<usize>,
    /// Final bitstring labels `b`.
    pub final_bits: Vec<BitString>,
}

/// Runs the faithful `A_*` for problem `problem`, randomized solver
/// `alg`, on the 2-hop colored instance `instance` (labels `(input,
/// color)`) — fast path, single-threaded.
///
/// # Errors
///
/// Budget errors ([`CoreError::PhaseBudgetExceeded`],
/// [`CoreError::EnumerationTooLarge`],
/// [`CoreError::SearchBudgetExceeded`]); view errors for oversized
/// explicit views; [`CoreError::InconsistentOutput`] if two phases
/// disagree on a node's output (impossible per Lemma 9 — a bug trap).
pub fn run_astar<A, P, C>(
    alg: &A,
    problem: &P,
    instance: &LabeledGraph<(A::Input, C)>,
    cfg: &AStarConfig,
) -> Result<AStarRun<A::Output>>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
    P: Problem<Input = A::Input>,
    C: Label,
{
    run_astar_observed(alg, problem, instance, cfg, &NoopRecorder)
}

/// [`run_astar`] under an observability [`Recorder`]: each per-node phase
/// step reports `update_graph` / `update_output` / `update_bits` spans
/// (nested under an `astar` parent), so aggregating backends expose the
/// wall-time breakdown of the paper's three Update-* rules; the memo
/// additionally reports `astar.pool.hit` / `astar.pool.miss` and the C2
/// lookup counters. With the no-op recorder this is exactly [`run_astar`].
///
/// # Errors
///
/// See [`run_astar`].
pub fn run_astar_observed<A, P, C>(
    alg: &A,
    problem: &P,
    instance: &LabeledGraph<(A::Input, C)>,
    cfg: &AStarConfig,
    rec: &dyn Recorder,
) -> Result<AStarRun<A::Output>>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
    P: Problem<Input = A::Input>,
    C: Label,
{
    let _astar_span = Span::new(rec, names::SPAN_ASTAR);
    let g = instance.graph();
    let n = g.node_count();
    let mut state = AStarState::new(n);
    let mut cache: AstarCache<A::Input, C> = AstarCache::new();

    for p in 1..=cfg.max_phases {
        state.equivalent_rounds += p;
        let ip = augment(instance, &state.bits)?;
        let keys = prepare_phase(&mut cache, problem, &ip, p, cfg, rec)?;
        let results: Vec<Result<NodeOutcome<A::Output>>> = g
            .nodes()
            .map(|v| astar_node_step(alg, &ip, v, p, keys[v.index()], &cache, cfg, rec))
            .collect();
        if let Some(done) = state.commit_phase(results, p)? {
            return Ok(done);
        }
    }
    Err(CoreError::PhaseBudgetExceeded { phases: cfg.max_phases })
}

/// [`run_astar_observed`] with the per-node phase loop fanned across
/// `threads` scoped workers on an [`anonet_batch::BatchScheduler`]. Node
/// steps only read shared phase state and write their own slot, and the
/// coordinator commits results in node order, so the run is
/// **byte-identical** to [`run_astar`] at every thread count (`threads ==
/// 0` is treated as 1). Tracing is causal across the fan-out: the
/// scheduler adopts the `astar` span as parent (via
/// [`anonet_obs::TraceContext`]), so worker-side `update_*` spans nest
/// below `astar/batch_run/job` instead of becoming fresh per-thread
/// roots, and the per-phase tree reduces to the sequential one once the
/// scheduler segments are erased
/// ([`MemorySnapshot::reduced_span_paths`][anonet_obs::MemorySnapshot::reduced_span_paths]).
///
/// # Errors
///
/// See [`run_astar`]; the first failing node in node order wins.
///
/// # Panics
///
/// Re-raises panics from node jobs (the scheduler isolates them; a panic
/// in `A_*`'s per-node step is a bug, not a recoverable outcome).
pub fn run_astar_threaded<A, P, C>(
    alg: &A,
    problem: &P,
    instance: &LabeledGraph<(A::Input, C)>,
    cfg: &AStarConfig,
    threads: usize,
    recorder: &SharedRecorder,
) -> Result<AStarRun<A::Output>>
where
    A: ObliviousAlgorithm + Clone + Sync,
    A::Input: Label + Sync,
    A::Output: Send,
    P: Problem<Input = A::Input>,
    C: Label + Sync,
{
    let rec: &dyn Recorder = &**recorder;
    let _astar_span = Span::new(rec, names::SPAN_ASTAR);
    let g = instance.graph();
    let n = g.node_count();
    let mut state = AStarState::new(n);
    let mut cache: AstarCache<A::Input, C> = AstarCache::new();
    let scheduler =
        BatchScheduler::with_threads(threads.max(1)).with_recorder(std::sync::Arc::clone(recorder));
    let nodes: Vec<NodeId> = g.nodes().collect();

    for p in 1..=cfg.max_phases {
        state.equivalent_rounds += p;
        let ip = augment(instance, &state.bits)?;
        let keys = prepare_phase(&mut cache, problem, &ip, p, cfg, rec)?;
        // Jobs wrap the node step's typed result in their Ok value, so
        // the scheduler never renders a CoreError to a string; the commit
        // below propagates the first error in node order.
        let outcome = scheduler.run(&nodes, |_, &v| {
            Ok::<Result<NodeOutcome<A::Output>>, String>(astar_node_step(
                alg,
                &ip,
                v,
                p,
                keys[v.index()],
                &cache,
                cfg,
                rec,
            ))
        });
        let results: Vec<Result<NodeOutcome<A::Output>>> = outcome
            .results
            .into_iter()
            .map(|r| match r {
                JobResult::Ok(inner) => inner,
                JobResult::Failed(msg) => {
                    Err(CoreError::internal(format!("A_* node jobs never return Err: {msg}")))
                }
                // Re-raising keeps the sequential panic semantics: a panic
                // in a node step aborts the run either way.
                // anonet-lint: allow(panic-hygiene, reason = "re-raises a worker panic to preserve sequential semantics")
                JobResult::Panicked(msg) => panic!("A_* node job panicked: {msg}"),
            })
            .collect();
        if let Some(done) = state.commit_phase(results, p)? {
            return Ok(done);
        }
    }
    Err(CoreError::PhaseBudgetExceeded { phases: cfg.max_phases })
}

/// `I^p`: the instance augmented with the current bitstring labels.
fn augment<I: Label, C: Label>(
    instance: &LabeledGraph<(I, C)>,
    bits: &[BitString],
) -> Result<LabeledGraph<CandidateLabel<I, C>>> {
    let g = instance.graph();
    let full_labels: Vec<CandidateLabel<I, C>> =
        g.nodes().map(|v| (instance.label(v).clone(), bits[v.index()].clone())).collect();
    Ok(g.with_labels(full_labels)?)
}

/// Phase-`p` setup against the memo: per-node universes (cached balls at
/// radius `p - 1`), then one [`AstarCache::ensure_pool`] per node — a hash
/// lookup for every node after the first in its universe class.
fn prepare_phase<I, C, P>(
    cache: &mut AstarCache<I, C>,
    problem: &P,
    ip: &LabeledGraph<CandidateLabel<I, C>>,
    p: usize,
    cfg: &AStarConfig,
    rec: &dyn Recorder,
) -> Result<Vec<PoolKey>>
where
    I: Label,
    C: Label,
    P: Problem<Input = I>,
{
    let universes = cache.phase_universes(ip, p - 1);
    let p_capped = p.min(cfg.max_candidate_nodes);
    universes.iter().map(|u| cache.ensure_pool(problem, p_capped, p, u, rec)).collect()
}

/// What one node's phase step produced: its adopted output (if the
/// simulation succeeded) and its extended bitstring (if an extension
/// succeeded). Only node `v` ever writes slot `v`, which is what makes
/// the parallel fan-out commit deterministic.
struct NodeOutcome<O> {
    output: Option<O>,
    new_bits: Option<BitString>,
}

/// One node's phase `p`: C2 lookup against the pool's selection index
/// (`Update-Graph`), quotient simulation (`Update-Output`), minimal tape
/// extension (`Update-Bits`). Reads shared phase state only.
#[allow(clippy::too_many_arguments)]
fn astar_node_step<A, C>(
    alg: &A,
    ip: &LabeledGraph<CandidateLabel<A::Input, C>>,
    v: NodeId,
    p: usize,
    key: PoolKey,
    cache: &AstarCache<A::Input, C>,
    cfg: &AStarConfig,
    rec: &dyn Recorder,
) -> Result<NodeOutcome<A::Output>>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
    C: Label,
{
    let update_graph_span = Span::new(rec, names::SPAN_UPDATE_GRAPH);
    // Arena-backed build: byte-identical to `ViewTree::build(..)?.
    // canonical_encoding()` (pinned by the views tests and the testkit
    // oracle), allocation-free after the per-thread arena warms up.
    let view_v = canonical_view_encoding(ip, v, p)?;
    if rec.is_enabled() {
        rec.counter(names::ASTAR_C2_LOOKUPS, 1);
    }
    let selected = cache.select(key, p, &view_v);
    drop(update_graph_span);
    let Some((q, v_star)) = selected else {
        return Ok(NodeOutcome { output: None, new_bits: None }); // skip phase p at v
    };
    if rec.is_enabled() {
        rec.counter(names::ASTAR_C2_HITS, 1);
    }

    let order = canonical_order(q.graph(), ViewMode::Portless)?;
    let j = q.graph().map_labels(|((i, _c), _b)| i.clone());
    let tapes: Vec<BitString> = q.graph().labels().iter().map(|(_ic, b)| b.clone()).collect();
    let assignment = BitAssignment::new(tapes);

    // Update-Output: simulate with the candidate's tapes.
    let update_output_span = Span::new(rec, names::SPAN_UPDATE_OUTPUT);
    let mut src = TapeSource::new(assignment.clone());
    let exec = run(&Oblivious(alg.clone()), &j, &mut src, &cfg.sim_config)?;
    let output = if exec.is_successful() {
        let out = exec
            .output(v_star)
            .ok_or_else(|| CoreError::internal("successful simulations output everywhere"))?;
        Some(out.clone())
    } else {
        None
    };
    drop(update_output_span);

    // Update-Bits: smallest p-extension inducing success.
    let update_bits_span = Span::new(rec, names::SPAN_UPDATE_BITS);
    let new_bits = match smallest_successful_extension(alg, &j, &assignment, p, &order, cfg)? {
        Some(b_min) => {
            let tape = b_min
                .tape(v_star)
                .ok_or_else(|| CoreError::internal("extension covers the quotient"))?;
            Some(tape.clone())
        }
        None => None,
    };
    drop(update_bits_span);

    Ok(NodeOutcome { output, new_bits })
}

/// Mutable run state shared by the engines; phase results are committed
/// in node order regardless of the order they were computed in.
struct AStarState<O> {
    bits: Vec<BitString>,
    outputs: Vec<Option<O>>,
    output_phase: Vec<usize>,
    equivalent_rounds: usize,
}

impl<O: Clone + PartialEq> AStarState<O> {
    fn new(n: usize) -> Self {
        AStarState {
            bits: vec![BitString::new(); n],
            outputs: vec![None; n],
            output_phase: vec![0; n],
            equivalent_rounds: 0,
        }
    }

    /// Applies one phase's node outcomes in node order — adopt outputs
    /// (trapping Lemma-9 inconsistencies), extend bitstrings — and
    /// returns the finished run once every node has output.
    fn commit_phase(
        &mut self,
        results: Vec<Result<NodeOutcome<O>>>,
        p: usize,
    ) -> Result<Option<AStarRun<O>>> {
        let mut new_bits = self.bits.clone();
        for (v, result) in results.into_iter().enumerate() {
            let outcome = result?;
            if let Some(out) = outcome.output {
                match &self.outputs[v] {
                    Some(existing) if *existing != out => {
                        return Err(CoreError::InconsistentOutput { node: v, phase: p });
                    }
                    Some(_) => {}
                    None => {
                        self.outputs[v] = Some(out);
                        self.output_phase[v] = p;
                    }
                }
            }
            if let Some(b) = outcome.new_bits {
                new_bits[v] = b;
            }
        }
        self.bits = new_bits;

        if self.outputs.iter().all(Option::is_some) {
            let outputs = std::mem::take(&mut self.outputs)
                .into_iter()
                .map(|o| o.ok_or_else(|| CoreError::internal("all outputs checked present")))
                .collect::<Result<Vec<O>>>()?;
            return Ok(Some(AStarRun {
                outputs,
                phases_used: p,
                equivalent_rounds: self.equivalent_rounds,
                output_phase: std::mem::take(&mut self.output_phase),
                final_bits: std::mem::take(&mut self.bits),
            }));
        }
        Ok(None)
    }
}

/// The literal Figure-3 realization: per node per phase, rebuild the
/// candidate pool and scan it for the minimal matching candidate. Kept as
/// the semantic baseline for [`run_astar`]'s memoized engine — the
/// `astar-fast-vs-reference` differential oracle compares the two
/// byte-for-byte.
///
/// # Errors
///
/// See [`run_astar`]; on aborting runs this path's error order is the
/// authoritative one.
pub fn run_astar_reference<A, P, C>(
    alg: &A,
    problem: &P,
    instance: &LabeledGraph<(A::Input, C)>,
    cfg: &AStarConfig,
) -> Result<AStarRun<A::Output>>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
    P: Problem<Input = A::Input>,
    C: Label,
{
    run_astar_reference_observed(alg, problem, instance, cfg, &NoopRecorder)
}

/// [`run_astar_reference`] under a [`Recorder`] (same spans as
/// [`run_astar_observed`], without the memo counters).
///
/// # Errors
///
/// See [`run_astar`].
pub fn run_astar_reference_observed<A, P, C>(
    alg: &A,
    problem: &P,
    instance: &LabeledGraph<(A::Input, C)>,
    cfg: &AStarConfig,
    rec: &dyn Recorder,
) -> Result<AStarRun<A::Output>>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
    P: Problem<Input = A::Input>,
    C: Label,
{
    let _astar_span = Span::new(rec, names::SPAN_ASTAR);
    let g = instance.graph();
    let n = g.node_count();
    let mut bits: Vec<BitString> = vec![BitString::new(); n];
    let mut outputs: Vec<Option<A::Output>> = vec![None; n];
    let mut output_phase: Vec<usize> = vec![0; n];
    let mut equivalent_rounds = 0usize;

    for p in 1..=cfg.max_phases {
        equivalent_rounds += p;
        let ip = augment(instance, &bits)?;

        // Candidate views are per-candidate, shared across nodes; node
        // views are per-node. Both depend on the phase only.
        let mut new_bits = bits.clone();
        for v in g.nodes() {
            let update_graph_span = Span::new(rec, names::SPAN_UPDATE_GRAPH);
            let view_v = ViewTree::build(&ip, v, p)?.canonical_encoding();

            // The label universe: marks occurring in L_p(v, I^p), i.e.
            // labels within p-1 hops (complete for candidates ≤ p nodes).
            let mut universe: Vec<CandidateLabel<A::Input, C>> =
                distance::ball(g, v, p - 1).into_iter().map(|u| ip.label(u).clone()).collect();
            universe.sort();
            universe.dedup();

            // Update-Graph: scan the pool for candidates, select the
            // minimal finite view graph.
            let pool = candidate_pool(p.min(cfg.max_candidate_nodes), &universe)?;
            // The selected candidate's finite view graph and v's node in it.
            type Selected<I, C> = (ViewQuotient<CandidateLabel<I, C>>, NodeId);
            let mut selected: Option<Selected<A::Input, C>> = None;
            for cand in &pool {
                // C2: a node with the same depth-p view.
                let mut v_hat = None;
                for u in cand.graph().nodes() {
                    let enc = ViewTree::build(cand, u, p)?.canonical_encoding();
                    if enc == view_v {
                        v_hat = Some(u);
                        break;
                    }
                }
                let Some(v_hat) = v_hat else { continue };
                // C3: the (î, ĉ) part is an instance of Π^c.
                let inputs_only = cand.map_labels(|((i, _c), _b)| i.clone());
                if !problem.is_instance(&inputs_only) {
                    continue;
                }
                let colors_only = cand.map_labels(|((_i, c), _b)| c.clone());
                if !anonet_graph::coloring::is_two_hop_coloring(&colors_only) {
                    continue;
                }
                // Finite view graph of the candidate.
                let Ok(q) = quotient(cand, ViewMode::Portless) else { continue };
                let better = match &selected {
                    None => true,
                    Some((best, _)) => {
                        update_graph_cmp(q.graph(), best.graph(), ViewMode::Portless)?
                            == std::cmp::Ordering::Less
                    }
                };
                if better {
                    let v_star = q.project(v_hat);
                    selected = Some((q, v_star));
                }
            }
            drop(update_graph_span);
            let Some((q, v_star)) = selected else { continue }; // skip phase p at v

            let order = canonical_order(q.graph(), ViewMode::Portless)?;
            let j = q.graph().map_labels(|((i, _c), _b)| i.clone());
            let tapes: Vec<BitString> =
                q.graph().labels().iter().map(|(_ic, b)| b.clone()).collect();
            let assignment = BitAssignment::new(tapes);

            // Update-Output: simulate with the candidate's tapes.
            let update_output_span = Span::new(rec, names::SPAN_UPDATE_OUTPUT);
            let mut src = TapeSource::new(assignment.clone());
            let exec = run(&Oblivious(alg.clone()), &j, &mut src, &cfg.sim_config)?;
            if exec.is_successful() {
                // anonet-lint: allow(panic-hygiene, reason = "reference engine kept literal to Figure 3; conformance oracles diff it against the fast engine")
                let out = exec.output(v_star).expect("successful simulations output everywhere");
                match &outputs[v.index()] {
                    Some(existing) if existing != out => {
                        return Err(CoreError::InconsistentOutput { node: v.index(), phase: p });
                    }
                    Some(_) => {}
                    None => {
                        outputs[v.index()] = Some(out.clone());
                        output_phase[v.index()] = p;
                    }
                }
            }
            drop(update_output_span);

            // Update-Bits: smallest p-extension inducing success.
            let update_bits_span = Span::new(rec, names::SPAN_UPDATE_BITS);
            if let Some(b_min) =
                smallest_successful_extension(alg, &j, &assignment, p, &order, cfg)?
            {
                new_bits[v.index()] =
                    // anonet-lint: allow(panic-hygiene, reason = "reference engine kept literal to Figure 3; conformance oracles diff it against the fast engine")
                    b_min.tape(v_star).expect("extension covers the quotient").clone();
            }
            drop(update_bits_span);
        }
        bits = new_bits;

        if outputs.iter().all(Option::is_some) {
            return Ok(AStarRun {
                // anonet-lint: allow(panic-hygiene, reason = "reference engine kept literal to Figure 3; conformance oracles diff it against the fast engine")
                outputs: outputs.into_iter().map(|o| o.expect("just checked")).collect(),
                phases_used: p,
                equivalent_rounds,
                output_phase,
                final_bits: bits,
            });
        }
    }
    Err(CoreError::PhaseBudgetExceeded { phases: cfg.max_phases })
}

/// Enumerates the extensions of `base` in which every tape reaches length
/// exactly `target` (the paper's *p-extensions*), in the canonical
/// assignment order, returning the first that induces a successful
/// simulation.
fn smallest_successful_extension<A>(
    alg: &A,
    j: &LabeledGraph<A::Input>,
    base: &BitAssignment,
    target: usize,
    order: &[NodeId],
    cfg: &AStarConfig,
) -> Result<Option<BitAssignment>>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
{
    let extras: Vec<usize> = order
        .iter()
        .map(|&v| target.saturating_sub(base.tape(v).map_or(0, BitString::len)))
        .collect();
    let total: usize = extras.iter().sum();
    if total > cfg.max_extension_bits {
        return Err(CoreError::SearchBudgetExceeded {
            quotient_nodes: j.node_count(),
            max_total_bits: cfg.max_extension_bits,
        });
    }
    for code in 0u64..(1u64 << total) {
        let mut tapes = base.tapes().to_vec();
        let mut shift = total;
        for (k, &v) in order.iter().enumerate() {
            for _ in 0..extras[k] {
                shift -= 1;
                tapes[v.index()].push((code >> shift) & 1 == 1);
            }
        }
        let assignment = BitAssignment::new(tapes);
        let mut src = TapeSource::new(assignment.clone());
        let exec = run(&Oblivious(alg.clone()), j, &mut src, &cfg.sim_config)?;
        if exec.is_successful() {
            return Ok(Some(assignment));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_algorithms::mis::RandomizedMis;
    use anonet_algorithms::problems::MisProblem;
    use anonet_graph::generators;

    fn triangle_instance() -> LabeledGraph<((), u32)> {
        generators::cycle(3).unwrap().with_labels(vec![((), 1u32), ((), 2), ((), 3)]).unwrap()
    }

    fn assert_runs_identical<O: PartialEq + std::fmt::Debug>(a: &AStarRun<O>, b: &AStarRun<O>) {
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.phases_used, b.phases_used);
        assert_eq!(a.equivalent_rounds, b.equivalent_rounds);
        assert_eq!(a.output_phase, b.output_phase);
        assert_eq!(a.final_bits, b.final_bits);
    }

    #[test]
    fn astar_solves_mis_on_the_colored_triangle() {
        let inst = triangle_instance();
        let run =
            run_astar(&RandomizedMis::new(), &MisProblem, &inst, &AStarConfig::default()).unwrap();
        let plain = inst.map_labels(|_| ());
        assert!(MisProblem.is_valid_output(&plain, &run.outputs), "outputs: {:?}", run.outputs);
        assert!(run.phases_used <= 12);
        assert!(run.equivalent_rounds >= run.phases_used);
        // Everyone ends with the same tape length (the converged b').
        let lens: Vec<usize> = run.final_bits.iter().map(BitString::len).collect();
        assert!(lens.iter().all(|&l| l == lens[0] || l + 1 == lens[0] || l == lens[0] + 1));
    }

    #[test]
    fn astar_is_deterministic() {
        let inst = triangle_instance();
        let a =
            run_astar(&RandomizedMis::new(), &MisProblem, &inst, &AStarConfig::default()).unwrap();
        let b =
            run_astar(&RandomizedMis::new(), &MisProblem, &inst, &AStarConfig::default()).unwrap();
        assert_runs_identical(&a, &b);
    }

    #[test]
    fn astar_solves_mis_on_the_colored_path() {
        // P2 with distinct colors: the smallest nontrivial instance.
        let inst = generators::path(2).unwrap().with_labels(vec![((), 1u32), ((), 2)]).unwrap();
        let run =
            run_astar(&RandomizedMis::new(), &MisProblem, &inst, &AStarConfig::default()).unwrap();
        let plain = inst.map_labels(|_| ());
        assert!(MisProblem.is_valid_output(&plain, &run.outputs));
        assert_eq!(run.outputs.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn astar_handles_a_second_problem_maximal_matching() {
        use anonet_algorithms::matching::{MatchingProblem, RandomizedMatching};
        // P2 colored 10, 20; matching inputs are the colors themselves.
        let inst =
            generators::path(2).unwrap().with_labels(vec![(10u32, 10u32), (20, 20)]).unwrap();
        let run = run_astar(
            &RandomizedMatching::<u32>::new(),
            &MatchingProblem,
            &inst,
            &AStarConfig::default(),
        )
        .unwrap();
        let colors = inst.map_labels(|(i, _)| *i);
        assert!(
            MatchingProblem.is_valid_output(&colors, &run.outputs),
            "outputs: {:?}",
            run.outputs
        );
        // P2's only edge must be matched.
        assert_eq!(run.outputs, vec![Some(20), Some(10)]);
    }

    #[test]
    fn fast_path_matches_the_reference_byte_for_byte() {
        let cfg = AStarConfig::default();
        let inst = triangle_instance();
        let fast = run_astar(&RandomizedMis::new(), &MisProblem, &inst, &cfg).unwrap();
        let reference =
            run_astar_reference(&RandomizedMis::new(), &MisProblem, &inst, &cfg).unwrap();
        assert_runs_identical(&fast, &reference);

        use anonet_algorithms::matching::{MatchingProblem, RandomizedMatching};
        let p2 = generators::path(2).unwrap().with_labels(vec![(10u32, 10u32), (20, 20)]).unwrap();
        let fast = run_astar(&RandomizedMatching::<u32>::new(), &MatchingProblem, &p2, &cfg);
        let reference =
            run_astar_reference(&RandomizedMatching::<u32>::new(), &MatchingProblem, &p2, &cfg);
        assert_runs_identical(&fast.unwrap(), &reference.unwrap());
    }

    #[test]
    fn threaded_astar_is_byte_identical_at_every_thread_count() {
        let cfg = AStarConfig::default();
        let inst = triangle_instance();
        let sequential = run_astar(&RandomizedMis::new(), &MisProblem, &inst, &cfg).unwrap();
        for threads in [1usize, 2, 8] {
            let par = run_astar_threaded(
                &RandomizedMis::new(),
                &MisProblem,
                &inst,
                &cfg,
                threads,
                &anonet_obs::noop(),
            )
            .unwrap();
            assert_runs_identical(&par, &sequential);
        }
    }

    #[test]
    fn observed_astar_reports_phase_spans_and_matches_plain() {
        let inst = triangle_instance();
        let rec = anonet_obs::MemoryRecorder::new();
        let observed = run_astar_observed(
            &RandomizedMis::new(),
            &MisProblem,
            &inst,
            &AStarConfig::default(),
            &rec,
        )
        .unwrap();
        let snap = rec.snapshot();
        assert_eq!(snap.span("astar").unwrap().count, 1);
        let ug = snap.span("astar/update_graph").unwrap();
        assert!(ug.count >= 3, "one Update-Graph per node per phase, got {}", ug.count);
        assert!(snap.span("astar/update_output").unwrap().count >= 1);
        assert!(snap.span("astar/update_bits").unwrap().count >= 1);
        // The memo is exercised: the triangle's three nodes share one
        // universe, so all but the first pool request per phase must hit.
        assert!(snap.counter(names::ASTAR_POOL_HIT) > 0, "pool memo never hit");
        assert!(snap.counter(names::ASTAR_POOL_MISS) > 0);
        assert!(snap.counter(names::ASTAR_C2_LOOKUPS) >= snap.counter(names::ASTAR_C2_HITS));
        let plain =
            run_astar(&RandomizedMis::new(), &MisProblem, &inst, &AStarConfig::default()).unwrap();
        assert_eq!(observed.outputs, plain.outputs);
        assert_eq!(observed.final_bits, plain.final_bits);
    }

    #[test]
    fn phase_budget_is_enforced() {
        let inst = triangle_instance();
        let cfg = AStarConfig { max_phases: 2, ..Default::default() };
        let err = run_astar(&RandomizedMis::new(), &MisProblem, &inst, &cfg).unwrap_err();
        assert!(matches!(err, CoreError::PhaseBudgetExceeded { phases: 2 }));
        let err = run_astar_reference(&RandomizedMis::new(), &MisProblem, &inst, &cfg).unwrap_err();
        assert!(matches!(err, CoreError::PhaseBudgetExceeded { phases: 2 }));
    }
}
