//! The Theorem-1 decomposition, end to end.
//!
//! *"...the execution of every randomized anonymous algorithm can be
//! decoupled into a generic preprocessing randomized stage that computes a
//! 2-hop coloring, followed by a problem-specific deterministic stage."*
//! (paper, abstract)
//!
//! [`run_pipeline`] is that sentence as code: stage 1 runs the Las-Vegas
//! [`TwoHopColoring`] algorithm (the **only** place randomness is
//! consumed); stage 2 hands the colored instance to the deterministic
//! [`Derandomizer`] for the actual problem.

use std::sync::Arc;
use std::time::{Duration, Instant};

use anonet_batch::DerandCache;
use anonet_graph::{BitString, Label, LabeledGraph};
use anonet_obs::{bridge, names, noop, Recorder, SharedRecorder, Span};
use anonet_runtime::{run, ExecConfig, Oblivious, ObliviousAlgorithm, RngSource};

use anonet_algorithms::two_hop_coloring::TwoHopColoring;

use crate::derandomizer::{DerandomizedRun, Derandomizer};
use crate::search::SearchStrategy;
use crate::Result;

/// The outcome of a full Theorem-1 pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineRun<O> {
    /// Final per-node outputs.
    pub outputs: Vec<O>,
    /// The 2-hop coloring computed by the randomized stage.
    pub coloring: Vec<BitString>,
    /// Rounds spent in the randomized coloring stage.
    pub coloring_rounds: usize,
    /// Random bits consumed (all in stage 1 — stage 2 uses none).
    pub random_bits: usize,
    /// Stage-2 details (quotient size, canonical assignment, …).
    pub deterministic: DerandomizedRun<O>,
    /// Wall time of the randomized coloring stage.
    pub coloring_time: Duration,
    /// Wall time of the deterministic stage.
    pub deterministic_time: Duration,
}

/// Runs the two-stage pipeline for a randomized algorithm `alg` on `net`.
///
/// * Stage 1 (randomized, generic): 2-hop color the network with seed
///   `seed`.
/// * Stage 2 (deterministic, problem-specific): derandomize `alg` on the
///   colored instance with `strategy`.
///
/// # Errors
///
/// Runtime errors from stage 1; derandomization errors from stage 2 (the
/// coloring produced by stage 1 is always valid, so
/// [`CoreError::NotTwoHopColored`](crate::CoreError::NotTwoHopColored)
/// here would indicate a bug).
///
/// # Example
///
/// ```
/// use anonet_graph::generators;
/// use anonet_runtime::Problem;
/// use anonet_algorithms::{mis::RandomizedMis, problems::MisProblem};
/// use anonet_core::{pipeline::run_pipeline, SearchStrategy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = generators::petersen().with_uniform_label(());
/// let run = run_pipeline(&RandomizedMis::new(), &net, 7,
///                        SearchStrategy::default())?;
/// assert!(MisProblem.is_valid_output(&net, &run.outputs));
/// // Stage 2 consumed no randomness at all:
/// assert!(run.random_bits > 0); // ... all of it in stage 1
/// # Ok(())
/// # }
/// ```
pub fn run_pipeline<A>(
    alg: &A,
    net: &LabeledGraph<A::Input>,
    seed: u64,
    strategy: SearchStrategy,
) -> Result<PipelineRun<A::Output>>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
{
    run_pipeline_with_config(alg, net, seed, strategy, &ExecConfig::default())
}

/// [`run_pipeline`] with an explicit execution config for both stages.
///
/// # Errors
///
/// See [`run_pipeline`].
pub fn run_pipeline_with_config<A>(
    alg: &A,
    net: &LabeledGraph<A::Input>,
    seed: u64,
    strategy: SearchStrategy,
    config: &ExecConfig,
) -> Result<PipelineRun<A::Output>>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
{
    run_pipeline_cached(alg, net, seed, strategy, config, None)
}

/// [`run_pipeline_with_config`] with an optional content-addressed
/// [`DerandCache`] handle for the deterministic stage. Stage 1 (the
/// randomized coloring) is never cached — it is seed-dependent by design —
/// but two different seeds frequently color a graph into the *same*
/// quotient up to isomorphism, so stage-2 sharing kicks in even within a
/// single network.
///
/// # Errors
///
/// See [`run_pipeline`].
pub fn run_pipeline_cached<A>(
    alg: &A,
    net: &LabeledGraph<A::Input>,
    seed: u64,
    strategy: SearchStrategy,
    config: &ExecConfig,
    cache: Option<&Arc<DerandCache>>,
) -> Result<PipelineRun<A::Output>>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
{
    run_pipeline_observed(alg, net, seed, strategy, config, cache, &noop())
}

/// [`run_pipeline_cached`] under an observability [`Recorder`]: the run
/// then reports a `pipeline` span with nested `coloring` and
/// `derandomize/...` children, bridges stage 1's execution profile into
/// the `engine.*` metrics, and threads the recorder through the
/// [`Derandomizer`] for stage-2 spans and cache counters. With the no-op
/// recorder this is exactly [`run_pipeline_cached`] — the byte-identity
/// tests pin that down.
///
/// # Errors
///
/// See [`run_pipeline`].
pub fn run_pipeline_observed<A>(
    alg: &A,
    net: &LabeledGraph<A::Input>,
    seed: u64,
    strategy: SearchStrategy,
    config: &ExecConfig,
    cache: Option<&Arc<DerandCache>>,
    recorder: &SharedRecorder,
) -> Result<PipelineRun<A::Output>>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
{
    let rec: &dyn Recorder = &**recorder;
    let _pipeline_span = Span::new(rec, names::SPAN_PIPELINE);

    // Stage 1: randomized 2-hop coloring.
    let t0 = Instant::now();
    let coloring_span = Span::new(rec, names::SPAN_COLORING);
    let unit = net.map_labels(|_| ());
    let stage1 =
        run(&Oblivious(TwoHopColoring::new()), &unit, &mut RngSource::seeded(seed), config)?;
    let coloring = stage1.outputs_unwrapped();
    drop(coloring_span);
    bridge::record_execution(rec, &stage1);
    let coloring_time = t0.elapsed();

    // Stage 2: deterministic derandomization on the colored instance.
    let t1 = Instant::now();
    let colored = net.graph().with_labels(coloring.clone())?;
    let instance = net.zip(&colored)?;
    let mut derandomizer = Derandomizer::new(alg.clone())
        .with_strategy(strategy)
        .with_config(*config)
        .with_recorder(Arc::clone(recorder));
    if let Some(cache) = cache {
        derandomizer = derandomizer.with_cache(Arc::clone(cache));
    }
    let deterministic = derandomizer.run(&instance)?;

    Ok(PipelineRun {
        outputs: deterministic.outputs.clone(),
        coloring,
        coloring_rounds: stage1.rounds(),
        random_bits: stage1.bits_consumed(),
        deterministic_time: t1.elapsed(),
        deterministic,
        coloring_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_algorithms::coloring::RandomizedColoring;
    use anonet_algorithms::mis::RandomizedMis;
    use anonet_algorithms::problems::{GreedyColoringProblem, MisProblem};
    use anonet_graph::coloring::is_two_hop_coloring;
    use anonet_graph::generators;
    use anonet_runtime::Problem;

    #[test]
    fn pipeline_solves_mis_on_many_graphs() {
        let graphs = vec![
            generators::cycle(6).unwrap(),
            generators::path(8).unwrap(),
            generators::petersen(),
            generators::grid(3, 3, false).unwrap(),
            generators::star(7).unwrap(),
        ];
        for g in graphs {
            let net = g.with_uniform_label(());
            for seed in 0..3 {
                let run =
                    run_pipeline(&RandomizedMis::new(), &net, seed, SearchStrategy::default())
                        .unwrap();
                assert!(
                    MisProblem.is_valid_output(&net, &run.outputs),
                    "invalid pipeline MIS on {g} (seed {seed})"
                );
                let colored = g.with_labels(run.coloring.clone()).unwrap();
                assert!(is_two_hop_coloring(&colored));
            }
        }
    }

    #[test]
    fn pipeline_solves_coloring() {
        let net = generators::grid(3, 4, false).unwrap().with_uniform_label(());
        let run =
            run_pipeline(&RandomizedColoring::new(), &net, 11, SearchStrategy::default()).unwrap();
        assert!(GreedyColoringProblem.is_valid_output(&net, &run.outputs));
    }

    #[test]
    fn stage2_is_deterministic_given_stage1() {
        // Same seed ⇒ same coloring ⇒ identical deterministic stage.
        let net = generators::cycle(9).unwrap().with_uniform_label(());
        let a = run_pipeline(&RandomizedMis::new(), &net, 5, SearchStrategy::default()).unwrap();
        let b = run_pipeline(&RandomizedMis::new(), &net, 5, SearchStrategy::default()).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.coloring, b.coloring);
        assert_eq!(a.deterministic.assignment, b.deterministic.assignment);
    }

    #[test]
    fn randomness_is_confined_to_stage_one() {
        let net = generators::petersen().with_uniform_label(());
        let run = run_pipeline(&RandomizedMis::new(), &net, 3, SearchStrategy::default()).unwrap();
        // Stage 1 consumed bits; stage 2 reports a *derived* assignment,
        // not live randomness — reproducibility asserted above. Sanity:
        assert!(run.random_bits >= net.node_count());
        assert!(run.coloring_rounds > 0);
    }

    #[test]
    fn observed_pipeline_reports_spans_and_metrics() {
        use anonet_obs::MemoryRecorder;
        let net = generators::cycle(6).unwrap().with_uniform_label(());
        let rec = Arc::new(MemoryRecorder::new());
        let shared: SharedRecorder = rec.clone();
        let run = run_pipeline_observed(
            &RandomizedMis::new(),
            &net,
            7,
            SearchStrategy::default(),
            &ExecConfig::default(),
            None,
            &shared,
        )
        .unwrap();
        let snap = rec.snapshot();
        assert_eq!(snap.span(names::SPAN_PIPELINE).unwrap().count, 1);
        assert_eq!(snap.span("pipeline/coloring").unwrap().count, 1);
        assert_eq!(snap.span("pipeline/derandomize").unwrap().count, 1);
        assert_eq!(snap.span("pipeline/derandomize/views").unwrap().count, 1);
        assert_eq!(snap.span("pipeline/derandomize/factor").unwrap().count, 1);
        assert_eq!(snap.span("pipeline/derandomize/search").unwrap().count, 1);
        assert_eq!(snap.span("pipeline/derandomize/lift").unwrap().count, 1);
        assert_eq!(snap.counter(names::ENGINE_BITS_DRAWN), run.random_bits as u64);
        assert_eq!(snap.counter(names::ENGINE_ROUNDS), run.coloring_rounds as u64);
        assert_eq!(
            snap.histogram(names::DERAND_QUOTIENT_NODES).unwrap().max(),
            Some(run.deterministic.quotient_nodes as u64)
        );
        assert_eq!(snap.histogram(names::DERAND_VIEW_DEPTH).unwrap().count(), 1);
        // No cache attached: no cache counters.
        assert_eq!(snap.counter(names::CACHE_HIT) + snap.counter(names::CACHE_MISS), 0);
        // The observed run computes the same thing as the plain one.
        let plain =
            run_pipeline(&RandomizedMis::new(), &net, 7, SearchStrategy::default()).unwrap();
        assert_eq!(run.outputs, plain.outputs);
        assert_eq!(run.coloring, plain.coloring);
    }

    #[test]
    fn observed_pipeline_counts_cache_traffic() {
        use anonet_batch::DerandCache;
        use anonet_obs::MemoryRecorder;
        let net = generators::cycle(6).unwrap().with_uniform_label(());
        let rec = Arc::new(MemoryRecorder::new());
        let shared: SharedRecorder = rec.clone();
        let cache = Arc::new(DerandCache::new());
        for seed in [7u64, 7, 7] {
            run_pipeline_observed(
                &RandomizedMis::new(),
                &net,
                seed,
                SearchStrategy::default(),
                &ExecConfig::default(),
                Some(&cache),
                &shared,
            )
            .unwrap();
        }
        let snap = rec.snapshot();
        // Same seed ⇒ same coloring ⇒ same quotient: 1 miss, then hits.
        assert_eq!(snap.counter(names::CACHE_MISS), 1);
        assert_eq!(snap.counter(names::CACHE_HIT), 2);
        assert_eq!(snap.span("pipeline/derandomize/replay").unwrap().count, 2);
        assert_eq!(snap.histogram(names::CACHE_BYTES).unwrap().count(), 3);
    }

    #[test]
    fn unique_colors_make_stage2_trivial_quotient() {
        // A 2-hop coloring with all-distinct colors means the instance is
        // prime: the quotient is the graph itself.
        let net = generators::cycle(5).unwrap().with_uniform_label(());
        let run = run_pipeline(&RandomizedMis::new(), &net, 2, SearchStrategy::default()).unwrap();
        // On C5 every pair of nodes is within 2 hops, so the coloring is
        // all-distinct and the quotient has 5 nodes.
        assert_eq!(run.deterministic.quotient_nodes, 5);
        assert!(MisProblem.is_valid_output(&net, &run.outputs));
    }
}
