//! # anonet-core
//!
//! The derandomization machinery of *"Anonymous Networks: Randomization =
//! 2-Hop Coloring"* (PODC 2014) — the paper's primary contribution, made
//! executable:
//!
//! * [`infinity`] — **Theorem 2** (`A_∞`): on a 2-hop colored instance,
//!   build the finite representation `G_*` of the infinite view graph,
//!   select the *minimal successful* bit assignment in the canonical
//!   order, simulate the randomized algorithm on the quotient, and lift
//!   the outputs;
//! * [`astar`] — **Theorem 1** (`A_*`, the paper's Figure 3): the
//!   phase-structured deterministic algorithm with its candidate
//!   enumeration (`Update-Graph`), quotient simulation (`Update-Output`),
//!   and lexicographically minimal tape extension (`Update-Bits`) —
//!   faithful to the pseudocode, feasible on small instances;
//! * [`astar_cache`] — the memo behind the fast `A_*` path: candidate
//!   pools keyed by `(p_capped, universe)`, per-depth C2 selection
//!   indexes, interned view encodings, and cached balls-by-radius;
//! * [`derandomizer`] — the engineering-grade variant of the same
//!   construction: quotient once, pick a canonical successful assignment
//!   (exhaustive-minimal or seeded-replay), lift;
//! * [`pipeline`] — the **Theorem-1 decomposition** end to end: a generic
//!   randomized 2-hop coloring stage followed by the problem-specific
//!   deterministic stage;
//! * [`candidates`] — enumeration of all candidate labeled graphs with at
//!   most `p` nodes over a finite label universe (complete for `A_*` by
//!   the connectivity argument: every node of a candidate appears in the
//!   matching view);
//! * [`conformance`] — differential oracles tying the three faces
//!   together (`A_*` ≡ `A_∞` ≡ the derandomizer ≡ a replayed randomized
//!   run), the core of `anonet-testkit`;
//! * [`gran`] — the GRAN bundle: a problem together with its Las-Vegas
//!   solver and decider, including deciding instance membership *by
//!   simulation* of the decider;
//! * [`batch`] — concurrent drivers running many instances through the
//!   derandomizer or pipeline on an `anonet-batch` scheduler, sharing one
//!   content-addressed derandomization cache (Lemma 3: lifts of a common
//!   base have isomorphic quotients, so the canonical search is paid once
//!   per quotient class).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod astar;
pub mod astar_cache;
pub mod batch;
pub mod candidates;
pub mod conformance;
pub mod derandomizer;
pub mod distributed;
mod error;
pub mod gran;
pub mod infinity;
pub mod pipeline;
mod search;

pub use batch::{derandomize_batch, pipeline_batch};
pub use derandomizer::{derandomize_port_sensitive, DerandomizedRun, Derandomizer};
pub use error::CoreError;
pub use search::SearchStrategy;

/// Convenient alias for results with [`CoreError`].
pub type Result<T> = std::result::Result<T, CoreError>;
