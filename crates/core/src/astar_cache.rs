//! Memoized candidate pools and C2 selection indexes for `A_*`.
//!
//! The faithful driver in [`crate::astar`] is dominated by `Update-Graph`:
//! the reference path rebuilds the candidate pool, re-checks C3, and
//! re-quotients every candidate *per node per phase*, although the pool is
//! a pure function of `(p_capped, universe)` — the capped candidate size
//! and the label universe visible in the node's view. Nodes in the same
//! color class share their universe exactly, so on the bench workloads the
//! same pool is rebuilt `Θ(n)` times per phase.
//!
//! [`AstarCache`] memoizes three layers:
//!
//! * **Balls** — `distance::ball(g, v, r)` per radius (node sets depend on
//!   the graph only, not on the evolving bitstring labels), so the
//!   per-phase universe computation is one label map over a cached ball;
//! * **Pools** — keyed by `(p_capped, Sym(universe encoding))`, a pool
//!   entry stores every candidate that passes the node-independent gates
//!   (C3 instance check, 2-hop coloring, quotient construction) together
//!   with its precomputed `(|V̂_*|, s(Ĝ_*))` ordering data;
//! * **Selection indexes** — per *view depth* `p`, a hash map from the
//!   interned depth-`p` canonical view encoding to the minimal matching
//!   candidate and its matched node `v̂`, turning the reference's
//!   `O(|pool| · |candidate|)` C2 scan into one hash lookup per node.
//!
//! The index must be keyed by the view depth and not only by `p_capped =
//! min(p, max_candidate_nodes)`: once `p` exceeds the candidate-size cap
//! the same `(p_capped, universe)` pool recurs at *different* view depths,
//! and depth-`p` encodings of the same node differ across depths. An
//! index keyed by the pool key alone — the literal reading of "memoize by
//! `(p, universe)`" — would silently miss every lookup after the first
//! depth seen.
//!
//! **Why the lookup is complete and faithful.** The node-dependent part of
//! `Update-Graph` is exactly C2 (a candidate node whose depth-`p` view
//! equals the node's); C3 and quotient construction are properties of the
//! candidate alone, so filtering them at pool-build time is the same
//! per-node filter the reference applies. The reference selects, scanning
//! in pool order, the first candidate minimal under `(|V̂_*|, s(Ĝ_*))`
//! with `v̂` the *first* matching node; the index reproduces both
//! tie-breaks by iterating candidates in pool order, registering only the
//! first node per encoding within a candidate, and replacing an entry only
//! on a strictly smaller `(node count, encoding)` pair. Symbols are used
//! for equality and hashing only — orderings always compare the canonical
//! bytes (see [`anonet_views::Interner`]).

use std::collections::{HashMap, HashSet};

use anonet_graph::{coloring, distance, BitString, Label, LabeledGraph, NodeId};
use anonet_obs::{names, Recorder};
use anonet_runtime::Problem;
use anonet_views::{
    canonical_encoding, canonical_view_encoding, quotient, Interner, Sym, ViewMode, ViewQuotient,
};

use crate::candidates::candidate_pool;
use crate::error::CoreError;
use crate::Result;

/// The label type `A_*` works over: `((input, color), bitstring)`.
pub type CandidateLabel<I, C> = ((I, C), BitString);

/// Key of a memoized pool: `(p_capped, interned universe encoding)`.
pub type PoolKey = (usize, Sym);

/// A candidate that survived the node-independent gates, with its
/// quotient and ordering data precomputed.
struct PoolCandidate<I: Label, C: Label> {
    /// The candidate presentation itself (C2 views are built against it).
    graph: LabeledGraph<CandidateLabel<I, C>>,
    /// Its finite view graph `Ĝ_*`.
    quotient: ViewQuotient<CandidateLabel<I, C>>,
    /// `|V̂_*|` — the primary `Update-Graph` sort key.
    node_count: usize,
    /// `s(Ĝ_*)` — the canonical-encoding tie-break, as bytes.
    encoding: Vec<u8>,
}

/// Depth-`p` C2 index: interned view encoding → `(candidate index, v̂)`.
struct SelectionIndex {
    map: HashMap<Sym, (usize, NodeId)>,
}

/// A memoized pool with its per-depth selection indexes.
struct PoolEntry<I: Label, C: Label> {
    candidates: Vec<PoolCandidate<I, C>>,
    indexes: HashMap<usize, SelectionIndex>,
}

/// The `A_*` memo: balls by radius, candidate pools by
/// `(p_capped, universe)`, C2 selection indexes by view depth.
///
/// One cache serves one instance for the lifetime of a run (the ball memo
/// assumes a fixed graph); pools and the interner are shared across all
/// phases and nodes of that run.
pub struct AstarCache<I: Label, C: Label> {
    interner: Interner,
    balls: HashMap<usize, Vec<Vec<NodeId>>>,
    pools: HashMap<PoolKey, PoolEntry<I, C>>,
    hits: u64,
    misses: u64,
}

impl<I: Label, C: Label> Default for AstarCache<I, C> {
    fn default() -> Self {
        AstarCache {
            interner: Interner::new(),
            balls: HashMap::new(),
            pools: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }
}

impl<I: Label, C: Label> AstarCache<I, C> {
    /// An empty cache.
    pub fn new() -> Self {
        AstarCache::default()
    }

    /// Pool requests answered from the memo.
    pub fn pool_hits(&self) -> u64 {
        self.hits
    }

    /// Pool requests that had to build the pool.
    pub fn pool_misses(&self) -> u64 {
        self.misses
    }

    /// Per-node label universes for one phase: the labels of `I^p` within
    /// the cached `distance::ball(g, v, radius)`, sorted and deduplicated
    /// — exactly the reference's per-node computation, with the ball
    /// (which depends on the graph only, never on the evolving bitstring
    /// labels) hoisted out of the phase loop.
    pub fn phase_universes(
        &mut self,
        ip: &LabeledGraph<CandidateLabel<I, C>>,
        radius: usize,
    ) -> Vec<Vec<CandidateLabel<I, C>>> {
        let g = ip.graph();
        let balls = self
            .balls
            .entry(radius)
            .or_insert_with(|| g.nodes().map(|v| distance::ball(g, v, radius)).collect());
        balls
            .iter()
            .map(|ball| {
                let mut universe: Vec<CandidateLabel<I, C>> =
                    ball.iter().map(|&u| ip.label(u).clone()).collect();
                universe.sort();
                universe.dedup();
                universe
            })
            .collect()
    }

    /// Returns the key of the pool for `(p_capped, universe)`, building
    /// the pool on first sight and the depth-`depth` selection index on
    /// the first sight of that depth. Records
    /// [`names::ASTAR_POOL_HIT`] / [`names::ASTAR_POOL_MISS`].
    ///
    /// # Errors
    ///
    /// Enumeration-size errors from [`candidate_pool`] and view errors
    /// from candidate view construction.
    pub fn ensure_pool<P>(
        &mut self,
        problem: &P,
        p_capped: usize,
        depth: usize,
        universe: &[CandidateLabel<I, C>],
        rec: &dyn Recorder,
    ) -> Result<PoolKey>
    where
        P: Problem<Input = I>,
    {
        let ukey = self.interner.intern(&universe_encoding(universe));
        let key = (p_capped, ukey);
        if let std::collections::hash_map::Entry::Vacant(slot) = self.pools.entry(key) {
            self.misses += 1;
            if rec.is_enabled() {
                rec.counter(names::ASTAR_POOL_MISS, 1);
            }
            let pool = candidate_pool(p_capped, universe)?;
            slot.insert(PoolEntry {
                candidates: filter_pool(problem, pool)?,
                indexes: HashMap::new(),
            });
        } else {
            self.hits += 1;
            if rec.is_enabled() {
                rec.counter(names::ASTAR_POOL_HIT, 1);
            }
        }
        // Split borrows: the index build interns candidate view encodings.
        let AstarCache { interner, pools, .. } = self;
        let entry =
            pools.get_mut(&key).ok_or_else(|| CoreError::internal("pool was just ensured"))?;
        if let std::collections::hash_map::Entry::Vacant(slot) = entry.indexes.entry(depth) {
            slot.insert(build_index(&entry.candidates, depth, interner)?);
        }
        Ok(key)
    }

    /// The `Update-Graph` selection for a node whose depth-`depth`
    /// canonical view encoding is `view_encoding`: the minimal candidate's
    /// finite view graph and the projection `v̊` of the matched node.
    /// `None` when no candidate matches (the node skips this phase).
    pub fn select(
        &self,
        key: PoolKey,
        depth: usize,
        view_encoding: &[u8],
    ) -> Option<(&ViewQuotient<CandidateLabel<I, C>>, NodeId)> {
        let sym = self.interner.sym(view_encoding)?;
        let entry = self.pools.get(&key)?;
        let &(idx, v_hat) = entry.indexes.get(&depth)?.map.get(&sym)?;
        let cand = &entry.candidates[idx];
        Some((&cand.quotient, cand.quotient.project(v_hat)))
    }
}

/// The canonical byte encoding of a label universe (length-prefixed
/// concatenation of the labels' [`Label::encode`] forms). Injective on
/// sorted deduplicated universes, and — because the universe is derived
/// from a *ball's label set* — invariant under node renumbering and port
/// re-permutation of the instance.
pub fn universe_encoding<L: Label>(universe: &[L]) -> Vec<u8> {
    let mut out = Vec::new();
    (universe.len() as u64).encode(&mut out);
    for label in universe {
        label.encode(&mut out);
    }
    out
}

/// The per-node pool-memo keys `(p_capped, universe encoding)` of one
/// phase, computed directly (no cache) — the proptest surface for the
/// memo-key invariance property: renumbering the instance permutes this
/// vector by the same permutation, and port shuffles leave it untouched.
pub fn pool_keys<L: Label>(
    ip: &LabeledGraph<L>,
    p: usize,
    max_candidate_nodes: usize,
) -> Vec<(usize, Vec<u8>)> {
    let g = ip.graph();
    g.nodes()
        .map(|v| {
            let mut universe: Vec<L> = distance::ball(g, v, p.saturating_sub(1))
                .into_iter()
                .map(|u| ip.label(u).clone())
                .collect();
            universe.sort();
            universe.dedup();
            (p.min(max_candidate_nodes), universe_encoding(&universe))
        })
        .collect()
}

/// Applies the node-independent `Update-Graph` gates (C3 instance check,
/// 2-hop coloring, quotient construction) to a raw pool, in pool order,
/// precomputing each survivor's ordering data.
fn filter_pool<I, C, P>(
    problem: &P,
    pool: Vec<LabeledGraph<CandidateLabel<I, C>>>,
) -> Result<Vec<PoolCandidate<I, C>>>
where
    I: Label,
    C: Label,
    P: Problem<Input = I>,
{
    let mut out = Vec::new();
    for cand in pool {
        // C3: the (î, ĉ) part is an instance of Π^c.
        let inputs_only = cand.map_labels(|((i, _c), _b)| i.clone());
        if !problem.is_instance(&inputs_only) {
            continue;
        }
        let colors_only = cand.map_labels(|((_i, c), _b)| c.clone());
        if !coloring::is_two_hop_coloring(&colors_only) {
            continue;
        }
        // Finite view graph of the candidate.
        let Ok(q) = quotient(&cand, ViewMode::Portless) else { continue };
        let encoding = canonical_encoding(q.graph(), ViewMode::Portless)?;
        out.push(PoolCandidate {
            node_count: q.graph().node_count(),
            encoding,
            quotient: q,
            graph: cand,
        });
    }
    Ok(out)
}

/// Builds the depth-`depth` C2 index over `candidates`, reproducing the
/// reference scan's tie-breaks: candidates visited in pool order, only the
/// first node per encoding registered within a candidate, entries replaced
/// only on strictly smaller `(node count, encoding bytes)`.
fn build_index<I: Label, C: Label>(
    candidates: &[PoolCandidate<I, C>],
    depth: usize,
    interner: &mut Interner,
) -> Result<SelectionIndex> {
    let mut map: HashMap<Sym, (usize, NodeId)> = HashMap::new();
    for (idx, cand) in candidates.iter().enumerate() {
        let mut seen: HashSet<Sym> = HashSet::new();
        for u in cand.graph.graph().nodes() {
            // Arena fast path; byte-identical to the recursive build.
            let enc = canonical_view_encoding(&cand.graph, u, depth)?;
            let sym = interner.intern(&enc);
            if !seen.insert(sym) {
                continue; // v̂ is the *first* matching node of the candidate
            }
            match map.entry(sym) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert((idx, u));
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    let best = &candidates[slot.get().0];
                    // Strictly-less replacement keeps the earliest minimal
                    // candidate, matching the reference's pool-order scan.
                    if (cand.node_count, &cand.encoding) < (best.node_count, &best.encoding) {
                        slot.insert((idx, u));
                    }
                }
            }
        }
    }
    Ok(SelectionIndex { map })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_algorithms::problems::MisProblem;
    use anonet_graph::generators;
    use anonet_obs::NoopRecorder;
    use anonet_views::{canonical_order, update_graph_cmp, ViewTree};

    use crate::candidates::candidate_pool_all_presentations;

    type MisLabel = CandidateLabel<(), u32>;

    fn triangle_universe() -> Vec<MisLabel> {
        vec![
            (((), 1u32), BitString::new()),
            (((), 2), BitString::new()),
            (((), 3), BitString::new()),
        ]
    }

    fn triangle_ip() -> LabeledGraph<MisLabel> {
        generators::cycle(3).unwrap().with_labels(triangle_universe()).unwrap()
    }

    /// `(node count, encoding, canonical position of v̊)` — everything the
    /// rest of `A_*` can observe about a selection.
    fn selection_fingerprint(
        q: &ViewQuotient<MisLabel>,
        v_star: NodeId,
    ) -> (usize, Vec<u8>, usize) {
        let order = canonical_order(q.graph(), ViewMode::Portless).unwrap();
        let pos = order.iter().position(|&x| x == v_star).unwrap();
        (q.graph().node_count(), canonical_encoding(q.graph(), ViewMode::Portless).unwrap(), pos)
    }

    /// The reference `Update-Graph` scan from `crate::astar`, verbatim.
    fn reference_select(
        pool: &[LabeledGraph<MisLabel>],
        view_v: &[u8],
        p: usize,
    ) -> Option<(ViewQuotient<MisLabel>, NodeId)> {
        let mut selected: Option<(ViewQuotient<MisLabel>, NodeId)> = None;
        for cand in pool {
            let mut v_hat = None;
            for u in cand.graph().nodes() {
                let enc = ViewTree::build(cand, u, p).unwrap().canonical_encoding();
                if enc == view_v {
                    v_hat = Some(u);
                    break;
                }
            }
            let Some(v_hat) = v_hat else { continue };
            let inputs_only = cand.map_labels(|((i, _c), _b)| *i);
            if !MisProblem.is_instance(&inputs_only) {
                continue;
            }
            let colors_only = cand.map_labels(|((_i, c), _b)| *c);
            if !coloring::is_two_hop_coloring(&colors_only) {
                continue;
            }
            let Ok(q) = quotient(cand, ViewMode::Portless) else { continue };
            let better = match &selected {
                None => true,
                Some((best, _)) => {
                    update_graph_cmp(q.graph(), best.graph(), ViewMode::Portless).unwrap()
                        == std::cmp::Ordering::Less
                }
            };
            if better {
                let v_star = q.project(v_hat);
                selected = Some((q, v_star));
            }
        }
        selected
    }

    #[test]
    fn indexed_selection_matches_the_reference_scan() {
        let ip = triangle_ip();
        let universe = triangle_universe();
        let mut cache: AstarCache<(), u32> = AstarCache::new();
        for p in 1..=3usize {
            let key =
                cache.ensure_pool(&MisProblem, p.min(3), p, &universe, &NoopRecorder).unwrap();
            let pool = candidate_pool(p.min(3), &universe).unwrap();
            for v in ip.graph().nodes() {
                let view_v = ViewTree::build(&ip, v, p).unwrap().canonical_encoding();
                let fast = cache.select(key, p, &view_v);
                let reference = reference_select(&pool, &view_v, p);
                match (fast, reference) {
                    (None, None) => {}
                    (Some((fq, fv)), Some((rq, rv))) => {
                        assert_eq!(
                            selection_fingerprint(fq, fv),
                            selection_fingerprint(&rq, rv),
                            "selection diverged at p={p}, v={v:?}"
                        );
                    }
                    (fast, reference) => panic!(
                        "selection presence diverged at p={p}, v={v:?}: fast={}, reference={}",
                        fast.is_some(),
                        reference.is_some()
                    ),
                }
            }
        }
    }

    #[test]
    fn pool_selection_is_invariant_under_presentation_dedup() {
        // The iso-dedup in `candidates::candidate_pool` must not move the
        // Update-Graph selection: index the deduped pool and the literal
        // all-presentations pool, and compare the selected candidate for
        // every view encoding either index knows.
        let universe = triangle_universe();
        let depth = 3usize;
        let deduped = filter_pool(&MisProblem, candidate_pool(3, &universe).unwrap()).unwrap();
        let full =
            filter_pool(&MisProblem, candidate_pool_all_presentations(3, &universe).unwrap())
                .unwrap();
        assert!(full.len() > deduped.len(), "dedup should shrink the pool");

        let mut interner_d = Interner::new();
        let index_d = build_index(&deduped, depth, &mut interner_d).unwrap();
        let mut interner_f = Interner::new();
        let index_f = build_index(&full, depth, &mut interner_f).unwrap();

        let by_bytes =
            |index: &SelectionIndex, interner: &Interner, cands: &[PoolCandidate<(), u32>]| {
                index
                    .map
                    .iter()
                    .map(|(&sym, &(idx, v_hat))| {
                        let q = &cands[idx].quotient;
                        (interner.resolve(sym).to_vec(), selection_fingerprint(q, q.project(v_hat)))
                    })
                    .collect::<HashMap<_, _>>()
            };
        let selections_d = by_bytes(&index_d, &interner_d, &deduped);
        let selections_f = by_bytes(&index_f, &interner_f, &full);
        assert_eq!(selections_d.len(), selections_f.len());
        assert!(!selections_d.is_empty());
        for (enc, fp) in &selections_d {
            assert_eq!(
                selections_f.get(enc),
                Some(fp),
                "presentation dedup moved the selection for one view encoding"
            );
        }
    }

    #[test]
    fn cached_pools_are_hits_after_first_build() {
        let universe = triangle_universe();
        let mut cache: AstarCache<(), u32> = AstarCache::new();
        let k1 = cache.ensure_pool(&MisProblem, 3, 3, &universe, &NoopRecorder).unwrap();
        assert_eq!((cache.pool_hits(), cache.pool_misses()), (0, 1));
        let k2 = cache.ensure_pool(&MisProblem, 3, 3, &universe, &NoopRecorder).unwrap();
        assert_eq!(k1, k2);
        // Same pool at a deeper view depth: a hit plus a fresh index.
        let k3 = cache.ensure_pool(&MisProblem, 3, 4, &universe, &NoopRecorder).unwrap();
        assert_eq!(k1, k3);
        assert_eq!((cache.pool_hits(), cache.pool_misses()), (2, 1));
        // A different universe is a different pool.
        let other = vec![(((), 7u32), BitString::new())];
        let k4 = cache.ensure_pool(&MisProblem, 3, 3, &other, &NoopRecorder).unwrap();
        assert_ne!(k1, k4);
        assert_eq!(cache.pool_misses(), 2);
    }

    #[test]
    fn selection_indexes_are_per_depth() {
        // The same (p_capped, universe) pool serves different view depths
        // once p exceeds max_candidate_nodes; the C2 index must be keyed
        // by the depth, or lookups at later depths would all miss.
        let ip = triangle_ip();
        let universe = triangle_universe();
        let mut cache: AstarCache<(), u32> = AstarCache::new();
        let v = ip.graph().nodes().next().unwrap();
        for depth in 3..=5usize {
            let key = cache.ensure_pool(&MisProblem, 3, depth, &universe, &NoopRecorder).unwrap();
            let view_v = ViewTree::build(&ip, v, depth).unwrap().canonical_encoding();
            assert!(
                cache.select(key, depth, &view_v).is_some(),
                "depth-{depth} lookup missed although the triangle has a candidate"
            );
        }
        assert_eq!(cache.pool_misses(), 1, "one pool serves all three depths");
    }

    #[test]
    fn hoisted_universes_match_per_node_computation() {
        // Satellite: the per-phase universe hoist must agree with the
        // reference's literal per-node computation.
        let c6 = generators::cycle(6).unwrap();
        let labels: Vec<MisLabel> = (0..6)
            .map(|i| {
                let mut b = BitString::new();
                b.push(i % 2 == 0);
                (((), (i % 3 + 1) as u32), b)
            })
            .collect();
        let ip = c6.with_labels(labels).unwrap();
        let mut cache: AstarCache<(), u32> = AstarCache::new();
        for radius in 0..4usize {
            let hoisted = cache.phase_universes(&ip, radius);
            for v in ip.graph().nodes() {
                let mut expected: Vec<MisLabel> = distance::ball(ip.graph(), v, radius)
                    .into_iter()
                    .map(|u| ip.label(u).clone())
                    .collect();
                expected.sort();
                expected.dedup();
                assert_eq!(hoisted[v.index()], expected, "radius {radius}, node {v:?}");
            }
        }
        // Balls are memoized once per radius.
        assert_eq!(cache.balls.len(), 4);
        let before = cache.phase_universes(&ip, 2);
        assert_eq!(cache.balls.len(), 4);
        assert_eq!(before, cache.phase_universes(&ip, 2));
    }

    #[test]
    fn pool_keys_follow_renumbering_and_ignore_ports() {
        use anonet_graph::lift::Perm;
        let ip = triangle_ip();
        let keys = pool_keys(&ip, 2, 4);
        let perm = Perm::shift(3);
        let renumbered = ip.renumber(&perm).unwrap();
        let keys_r = pool_keys(&renumbered, 2, 4);
        for v in 0..3 {
            assert_eq!(keys[v], keys_r[perm.apply(v)], "memo key did not follow node {v}");
        }
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xA57A);
        let shuffled = ip.with_shuffled_ports(&mut rng);
        assert_eq!(keys, pool_keys(&shuffled, 2, 4), "memo keys saw port numbering");
    }
}
