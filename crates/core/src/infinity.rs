//! Theorem 2 — the infinity-model algorithm `A_∞`.
//!
//! In the paper's infinity model (Section 2), node `v` outputs
//! `A_∞(L_∞(v))`: a pure function of its depth-∞ view. The function is:
//! reconstruct the infinite view graph `I_∞` from the view (every depth-∞
//! subtree of `L_∞(v)` is a node of `I_∞`), simulate `A_R` on it under the
//! **minimal successful** bit assignment in the canonical order (Lemma 1:
//! all nodes select the same simulation `σ_∞`), and output node `ṽ`'s
//! result.
//!
//! By Norris' theorem and Corollary 2 the infinite view graph has the
//! finite representation `G_*`, which is what this module computes — so
//! [`solve_infinity`] is precisely `A_∞`, with the minimal-assignment
//! search made explicit and budgeted.

use anonet_graph::{Label, LabeledGraph};
use anonet_runtime::{ExecConfig, ObliviousAlgorithm};

use crate::derandomizer::{DerandomizedRun, Derandomizer};
use crate::search::SearchStrategy;
use crate::Result;

/// Runs `A_∞` on a 2-hop colored instance (labels are `(input, color)`
/// pairs): quotient + **exhaustive minimal** successful assignment + lift.
///
/// `max_total_bits` bounds the exhaustive search (`2^(|V_*|·t)`
/// simulations per tape length `t`); the run fails cleanly when the
/// quotient is too large for the paper-exact rule — use
/// [`Derandomizer`] with [`SearchStrategy::Seeded`] beyond that point.
///
/// # Errors
///
/// [`CoreError::NotTwoHopColored`](crate::CoreError::NotTwoHopColored) or
/// [`CoreError::SearchBudgetExceeded`](crate::CoreError::SearchBudgetExceeded).
pub fn solve_infinity<A, C>(
    alg: &A,
    instance: &LabeledGraph<(A::Input, C)>,
    max_total_bits: usize,
    config: &ExecConfig,
) -> Result<DerandomizedRun<A::Output>>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
    C: Label,
{
    Derandomizer::new(alg.clone())
        .with_strategy(SearchStrategy::Exhaustive { max_total_bits })
        .with_config(*config)
        .run(instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_algorithms::mis::RandomizedMis;
    use anonet_algorithms::problems::MisProblem;
    use anonet_graph::generators;
    use anonet_runtime::Problem;

    fn figure2_instance(n: usize) -> LabeledGraph<((), u32)> {
        let labels: Vec<((), u32)> = (0..n).map(|i| ((), (i % 3) as u32 + 1)).collect();
        generators::cycle(n).unwrap().with_labels(labels).unwrap()
    }

    #[test]
    fn theorem2_on_figure2_products() {
        // The same minimal simulation solves C3, C6, and C12: the outputs
        // on the products are the lifts of the C3 outputs.
        let base =
            solve_infinity(&RandomizedMis::new(), &figure2_instance(3), 24, &ExecConfig::default())
                .unwrap();
        for n in [6usize, 12] {
            let run = solve_infinity(
                &RandomizedMis::new(),
                &figure2_instance(n),
                24,
                &ExecConfig::default(),
            )
            .unwrap();
            assert_eq!(run.quotient_nodes, 3);
            // Identical canonical assignments on identical quotients.
            assert_eq!(run.assignment, base.assignment);
            let plain = figure2_instance(n).map_labels(|_| ());
            assert!(MisProblem.is_valid_output(&plain, &run.outputs));
        }
    }

    #[test]
    fn infinity_model_nodes_with_equal_views_agree() {
        let run = solve_infinity(
            &RandomizedMis::new(),
            &figure2_instance(12),
            24,
            &ExecConfig::default(),
        )
        .unwrap();
        for v in 0..12 {
            assert_eq!(run.outputs[v], run.outputs[(v + 3) % 12], "fiber disagreement at {v}");
        }
    }

    #[test]
    fn budget_is_enforced() {
        let err =
            solve_infinity(&RandomizedMis::new(), &figure2_instance(6), 4, &ExecConfig::default())
                .unwrap_err();
        assert!(matches!(err, crate::CoreError::SearchBudgetExceeded { .. }));
    }
}
