//! The message-level derandomizer: Theorem 1's deterministic stage as an
//! honest anonymous message-passing algorithm with **polynomial-size
//! messages**.
//!
//! The faithful `A_*` ([`crate::astar`]) needs no global knowledge but
//! pays for it with a doubly-exponential candidate search; the white-box
//! [`Derandomizer`](crate::derandomizer) is fast but lives on the
//! simulator side. This module closes the triangle: given a known upper
//! bound `N ≥ n` in every node's input (the classic *prior knowledge*
//! model the paper's related work discusses — Yamashita–Kameda, Boldi–
//! Vigna), the deterministic stage runs as a real protocol:
//!
//! 1. **Gather** (rounds `1 .. 2N+1`): nodes exchange *closed folded
//!    views* ([`FoldedView`]) — DAG-compressed exact views of `O(n·d·Δ)`
//!    size instead of `Δ^d` trees — extending depth by one per round;
//! 2. **Reconstruct**: from the depth-`(2N+2)` closed view, each node
//!    reads off the finite view graph `G_*` and its own class
//!    ([`FoldedView::quotient_at_level`]);
//! 3. **Simulate & lift**: each node runs the same canonical successful
//!    simulation of `A_R` on `G_*` locally and outputs its class's
//!    result.
//!
//! All three steps are functions of the gathered view, so every node
//! computes the same quotient and the same simulation (the paper's
//! Lemma 1), and the outputs equal the white-box derandomizer's — the
//! test suite asserts byte-for-byte agreement.
//!
//! Dropping the bound `N` is exactly what `A_*`'s candidate/bit machinery
//! is for: without it, early reconstructions can be *spuriously*
//! consistent (a periodically colored long path looks locally like a
//! small cycle), so a bound-free protocol must keep outputs consistent
//! via locked-in bit prefixes rather than quotient certainty.

use std::marker::PhantomData;

use anonet_graph::Label;
use anonet_runtime::{Actions, ExecConfig, ObliviousAlgorithm};
use anonet_views::{canonical_order, FoldedView, ViewMode};

use crate::search::{canonical_successful_simulation, SearchStrategy};

/// Local state of [`BoundedDerandomizer`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BoundedState<I, C> {
    label: (I, C),
    bound: usize,
    view: FoldedView<(I, C)>,
    done: bool,
}

impl<I: Label, C: Label> BoundedState<I, C> {
    /// Depth of the currently gathered view.
    pub fn view_depth(&self) -> usize {
        self.view.depth()
    }
}

/// Theorem 1's deterministic stage as a message-passing algorithm with
/// folded-view messages; requires an upper bound `N ≥ n` in the input.
///
/// * **Input**: `((inner input, 2-hop color), N)`.
/// * **Output**: the derandomized output of the wrapped Las-Vegas
///   algorithm.
///
/// Deterministic: ignores its random bits. With a correct bound, outputs
/// equal the white-box [`Derandomizer`](crate::Derandomizer) under the
/// same [`SearchStrategy`]; with an *under*-estimated bound the protocol
/// may output inconsistently (garbage in, garbage out — see the module
/// docs for why the bound is load-bearing).
#[derive(Clone, Debug)]
pub struct BoundedDerandomizer<A, C> {
    alg: A,
    strategy: SearchStrategy,
    sim_config: ExecConfig,
    _marker: PhantomData<fn() -> C>,
}

impl<A, C> BoundedDerandomizer<A, C>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
    C: Label,
{
    /// Wraps a Las-Vegas algorithm with the default (seeded) strategy.
    pub fn new(alg: A) -> Self {
        BoundedDerandomizer {
            alg,
            strategy: SearchStrategy::default(),
            sim_config: ExecConfig::default(),
            _marker: PhantomData,
        }
    }

    /// Overrides the canonical-simulation search strategy.
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Attempts reconstruction + simulation on the current view; returns
    /// the node's output on success.
    fn try_solve(&self, state: &BoundedState<A::Input, C>) -> Option<A::Output> {
        let depth = state.view.depth();
        // Reconstruction level mirroring quotient_at_level's contract:
        // within a depth-d view use level (d - 2) / 2.
        let level = (depth.saturating_sub(2)) / 2;
        let (quotient, own) = state.view.quotient_at_level(level).ok()?;
        let order = canonical_order(&quotient, ViewMode::Portless).ok()?;
        let j = quotient.map_labels(|(i, _c)| i.clone());
        let sim =
            canonical_successful_simulation(&self.alg, &j, &order, self.strategy, &self.sim_config)
                .ok()?;
        sim.execution.output(own).cloned()
    }
}

impl<A, C> ObliviousAlgorithm for BoundedDerandomizer<A, C>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
    C: Label,
{
    type Input = ((A::Input, C), usize);
    type Message = FoldedView<(A::Input, C)>;
    type Output = A::Output;
    type State = BoundedState<A::Input, C>;

    fn init(&self, input: &Self::Input, _degree: usize) -> Self::State {
        let (label, bound) = input.clone();
        BoundedState { view: FoldedView::leaf(label.clone()), label, bound, done: false }
    }

    fn broadcast(&self, state: &Self::State) -> Option<Self::Message> {
        (!state.done).then(|| state.view.clone())
    }

    fn step(
        &self,
        mut state: Self::State,
        _round: usize,
        received: &[Self::Message],
        _bit: bool,
        actions: &mut Actions<Self::Output>,
    ) -> Self::State {
        if state.done {
            return state;
        }
        // Gather: extend by the neighbors' views plus the own view (the
        // self-loop of the *closed* view construction).
        let mut children: Vec<&FoldedView<(A::Input, C)>> = received.iter().collect();
        children.push(&state.view);
        state.view = FoldedView::extend(state.label.clone(), &children);

        // From depth 2N+2 on, attempt reconstruction + simulation.
        if state.view.depth() >= 2 * state.bound + 2 {
            if let Some(output) = self.try_solve(&state) {
                actions.output(output);
                actions.halt();
                state.done = true;
            }
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derandomizer::Derandomizer;
    use anonet_algorithms::mis::RandomizedMis;
    use anonet_algorithms::problems::MisProblem;
    use anonet_graph::{generators, LabeledGraph};
    use anonet_runtime::{run, Oblivious, Problem, Status, ZeroSource};

    fn colored_cycle(n: usize) -> LabeledGraph<((), u32)> {
        let labels: Vec<((), u32)> = (0..n).map(|i| ((), (i % 3) as u32 + 1)).collect();
        generators::cycle(n).unwrap().with_labels(labels).unwrap()
    }

    fn run_bounded(
        inst: &LabeledGraph<((), u32)>,
        bound: usize,
        strategy: SearchStrategy,
    ) -> anonet_runtime::Execution<Oblivious<BoundedDerandomizer<RandomizedMis, u32>>> {
        let with_bound = inst.map_labels(|l| (*l, bound));
        let alg = BoundedDerandomizer::<RandomizedMis, u32>::new(RandomizedMis::new())
            .with_strategy(strategy);
        run(&Oblivious(alg), &with_bound, &mut ZeroSource, &ExecConfig::default()).unwrap()
    }

    #[test]
    fn message_level_matches_white_box_derandomizer() {
        for n in [3usize, 6, 9, 12] {
            let inst = colored_cycle(n);
            let strategy = SearchStrategy::Exhaustive { max_total_bits: 24 };
            let exec = run_bounded(&inst, n, strategy);
            assert_eq!(exec.status(), Status::Completed, "n = {n}");
            assert!(exec.is_successful());
            let white_box =
                Derandomizer::new(RandomizedMis::new()).with_strategy(strategy).run(&inst).unwrap();
            assert_eq!(exec.outputs_unwrapped(), white_box.outputs, "n = {n}");
        }
    }

    #[test]
    fn outputs_are_valid_and_deterministic() {
        let inst = colored_cycle(12);
        let a = run_bounded(&inst, 12, SearchStrategy::default());
        let b = run_bounded(&inst, 12, SearchStrategy::default());
        assert_eq!(a.outputs(), b.outputs());
        let plain = inst.map_labels(|_| ());
        assert!(MisProblem.is_valid_output(&plain, &a.outputs_unwrapped()));
    }

    #[test]
    fn terminates_in_two_n_plus_one_rounds() {
        let inst = colored_cycle(6);
        let exec = run_bounded(&inst, 6, SearchStrategy::default());
        assert_eq!(exec.rounds(), 2 * 6 + 1);
    }

    #[test]
    fn loose_bounds_still_work() {
        // N may overestimate n; the protocol just gathers longer.
        let inst = colored_cycle(6);
        let exec = run_bounded(&inst, 10, SearchStrategy::default());
        assert!(exec.is_successful());
        let plain = inst.map_labels(|_| ());
        assert!(MisProblem.is_valid_output(&plain, &exec.outputs_unwrapped()));
    }

    #[test]
    fn works_on_lifts_with_nontrivial_quotients() {
        let l = anonet_graph::lift::cyclic_cycle_lift(3, 4).unwrap();
        let inst = l.lift_labels(&[((), 1u32), ((), 2), ((), 3)]).unwrap();
        let exec = run_bounded(&inst, 12, SearchStrategy::default());
        assert!(exec.is_successful());
        let outs = exec.outputs_unwrapped();
        // Fibers agree (views equal) and the result is a valid MIS.
        for (v, &img) in l.projection().iter().enumerate() {
            for (w, &img2) in l.projection().iter().enumerate() {
                if img == img2 {
                    assert_eq!(outs[v], outs[w]);
                }
            }
        }
        let plain = inst.map_labels(|_| ());
        assert!(MisProblem.is_valid_output(&plain, &outs));
    }

    #[test]
    fn works_on_prime_instances() {
        // All-distinct colors: the quotient is the graph itself; the
        // protocol effectively rebuilds the entire network from views.
        let inst = generators::cycle(5)
            .unwrap()
            .with_labels((0..5).map(|i| ((), i as u32)).collect())
            .unwrap();
        let exec = run_bounded(&inst, 5, SearchStrategy::default());
        assert!(exec.is_successful());
        let plain = inst.map_labels(|_| ());
        assert!(MisProblem.is_valid_output(&plain, &exec.outputs_unwrapped()));
    }
}
