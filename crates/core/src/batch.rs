//! Batch drivers: many instances through the derandomizer or the full
//! Theorem-1 pipeline, concurrently, with an optional shared
//! [`DerandCache`].
//!
//! This is where the paper's Lemma 3 pays off operationally: every lift of
//! a base graph has the same unique prime factor, so across a sweep of a
//! lift family the quotient-side work — the canonical order and the
//! minimal successful assignment — is computed **once** and replayed
//! everywhere else. The scheduler adds instance-level concurrency on top;
//! rounds within one instance stay strictly sequential (the simulator is
//! single-threaded by design — see DESIGN.md).
//!
//! Results come back in submission order with a [`BatchStats`] report;
//! when a cache is attached, the stats carry the cache-accounting delta
//! for exactly this batch's window.

use std::sync::Arc;
use std::time::Duration;

use anonet_batch::{BatchOutcome, BatchScheduler, DerandCache};
use anonet_graph::{Label, LabeledGraph};
use anonet_runtime::{ExecConfig, ObliviousAlgorithm};

use crate::derandomizer::{DerandomizedRun, Derandomizer};
use crate::pipeline::{run_pipeline_cached, PipelineRun};
use crate::search::SearchStrategy;

/// Derandomizes every 2-hop colored instance in `instances` concurrently.
///
/// Instances are independent jobs on `scheduler`'s worker pool; results
/// land in submission order. With `cache`, all instances share one
/// content-addressed store: the first instance of each quotient-isomorphism
/// class pays for the canonical search, the rest replay its tapes.
///
/// A failing instance fails only its own slot
/// ([`JobResult`](anonet_batch::JobResult)); the batch completes.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use anonet_batch::{BatchScheduler, DerandCache};
/// use anonet_core::batch::derandomize_batch;
/// use anonet_core::SearchStrategy;
/// use anonet_algorithms::mis::RandomizedMis;
/// use anonet_graph::lift::cyclic_cycle_lift;
/// use anonet_runtime::ExecConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A family of lifts of the colored triangle: one search, many replays.
/// let base = vec![((), 1u32), ((), 2), ((), 3)];
/// let family: Vec<_> = (2..=5)
///     .map(|m| cyclic_cycle_lift(3, m).unwrap().lift_labels(&base).unwrap())
///     .collect();
/// let cache = Arc::new(DerandCache::new());
/// let outcome = derandomize_batch(
///     &RandomizedMis::new(),
///     &family,
///     SearchStrategy::default(),
///     &ExecConfig::default(),
///     &BatchScheduler::new(),
///     Some(&cache),
/// );
/// assert_eq!(outcome.stats.succeeded, 4);
/// let stats = outcome.stats.cache.unwrap();
/// assert_eq!(stats.assignment_misses, 1); // one search...
/// assert_eq!(stats.assignment_hits, 3);   // ...three replays
/// # Ok(())
/// # }
/// ```
pub fn derandomize_batch<A, C>(
    alg: &A,
    instances: &[LabeledGraph<(A::Input, C)>],
    strategy: SearchStrategy,
    config: &ExecConfig,
    scheduler: &BatchScheduler,
    cache: Option<&Arc<DerandCache>>,
) -> BatchOutcome<DerandomizedRun<A::Output>>
where
    A: ObliviousAlgorithm + Clone + Sync,
    A::Input: Label + Send + Sync,
    A::Output: Send,
    C: Label + Send + Sync,
{
    let before = cache.map(|c| c.stats());
    let mut derandomizer =
        Derandomizer::new(alg.clone()).with_strategy(strategy).with_config(*config);
    if let Some(cache) = cache {
        derandomizer = derandomizer.with_cache(Arc::clone(cache));
    }
    let mut outcome = scheduler.run(instances, |_idx, instance| derandomizer.run(instance));
    outcome.stats.stages = stage_times(
        &outcome.results,
        &[
            ("quotient", &|r: &DerandomizedRun<A::Output>| r.quotient_time),
            ("search+lift", &|r| r.search_time),
        ],
    );
    if let (Some(cache), Some(before)) = (cache, before) {
        // Both snapshots come from the same live cache within this call, so
        // the window is monotone; an (unreachable) regression yields `None`
        // rather than fabricated numbers.
        outcome.stats.cache = cache.stats().delta_from(&before).ok();
    }
    outcome
}

/// Runs the full Theorem-1 pipeline over many `(network, seed)` jobs
/// concurrently. The optional `cache` is shared across all stage-2
/// derandomizations (stage 1, the randomized coloring, is per-seed by
/// nature and never cached).
pub fn pipeline_batch<A>(
    alg: &A,
    jobs: &[(LabeledGraph<A::Input>, u64)],
    strategy: SearchStrategy,
    config: &ExecConfig,
    scheduler: &BatchScheduler,
    cache: Option<&Arc<DerandCache>>,
) -> BatchOutcome<PipelineRun<A::Output>>
where
    A: ObliviousAlgorithm + Clone + Sync,
    A::Input: Label + Send + Sync,
    A::Output: Send,
{
    let before = cache.map(|c| c.stats());
    let mut outcome = scheduler.run(jobs, |_idx, (net, seed)| {
        run_pipeline_cached(alg, net, *seed, strategy, config, cache)
    });
    outcome.stats.stages = stage_times(
        &outcome.results,
        &[
            ("coloring", &|r: &PipelineRun<A::Output>| r.coloring_time),
            ("derandomize", &|r| r.deterministic_time),
        ],
    );
    if let (Some(cache), Some(before)) = (cache, before) {
        // Both snapshots come from the same live cache within this call, so
        // the window is monotone; an (unreachable) regression yields `None`
        // rather than fabricated numbers.
        outcome.stats.cache = cache.stats().delta_from(&before).ok();
    }
    outcome
}

/// A named accessor for one per-run stage duration.
type StageTime<'a, O> = (&'a str, &'a dyn Fn(&O) -> Duration);

/// Sums each named per-run stage duration over the successful results.
fn stage_times<O>(
    results: &[anonet_batch::JobResult<O>],
    stages: &[StageTime<'_, O>],
) -> Vec<(String, Duration)> {
    stages
        .iter()
        .map(|(name, time_of)| {
            let total = results.iter().filter_map(|r| r.ok()).map(time_of).sum();
            (name.to_string(), total)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_algorithms::mis::RandomizedMis;
    use anonet_algorithms::problems::MisProblem;
    use anonet_graph::lift::cyclic_cycle_lift;
    use anonet_graph::{coloring, generators};
    use anonet_runtime::Problem;

    fn lift_family(multiplicities: &[usize]) -> Vec<LabeledGraph<((), u32)>> {
        let base = vec![((), 1u32), ((), 2), ((), 3)];
        multiplicities
            .iter()
            .map(|&m| cyclic_cycle_lift(3, m).unwrap().lift_labels(&base).unwrap())
            .collect()
    }

    #[test]
    fn batch_matches_sequential_bit_for_bit() {
        let instances = lift_family(&[2, 3, 4, 5, 6]);
        let alg = RandomizedMis::new();
        let strategy = SearchStrategy::default();
        let config = ExecConfig::default();

        let sequential: Vec<_> = instances
            .iter()
            .map(|inst| Derandomizer::new(alg).with_strategy(strategy).run(inst).unwrap())
            .collect();

        let cache = Arc::new(DerandCache::new());
        let batch = derandomize_batch(
            &alg,
            &instances,
            strategy,
            &config,
            &BatchScheduler::with_threads(4),
            Some(&cache),
        );
        assert_eq!(batch.stats.succeeded, instances.len());
        for (seq, par) in sequential.iter().zip(batch.results.iter()) {
            let par = par.ok().unwrap();
            assert_eq!(seq.outputs, par.outputs);
            assert_eq!(seq.assignment, par.assignment);
            assert_eq!(seq.attempts, par.attempts);
            assert_eq!(seq.simulation_rounds, par.simulation_rounds);
        }
    }

    #[test]
    fn cache_collapses_a_lift_family_to_one_search() {
        let instances = lift_family(&[2, 3, 4, 5, 6, 7]);
        let cache = Arc::new(DerandCache::new());
        let outcome = derandomize_batch(
            &RandomizedMis::new(),
            &instances,
            SearchStrategy::default(),
            &ExecConfig::default(),
            &BatchScheduler::with_threads(1),
            Some(&cache),
        );
        let stats = outcome.stats.cache.unwrap();
        assert_eq!(stats.assignment_misses, 1);
        assert_eq!(stats.assignment_hits, 5);
        assert_eq!(stats.quotient_entries, 1);
        // Exactly one run paid for the search.
        let hits = outcome.results.iter().filter(|r| r.ok().unwrap().cache_hit).count();
        assert_eq!(hits, 5);
        // Per-stage times are reported.
        assert_eq!(outcome.stats.stages.len(), 2);
        assert_eq!(outcome.stats.stages[0].0, "quotient");
    }

    #[test]
    fn cache_is_optional_and_absent_by_default() {
        let instances = lift_family(&[2, 3]);
        let outcome = derandomize_batch(
            &RandomizedMis::new(),
            &instances,
            SearchStrategy::default(),
            &ExecConfig::default(),
            &BatchScheduler::with_threads(2),
            None,
        );
        assert!(outcome.stats.cache.is_none());
        assert!(outcome.results.iter().all(|r| !r.ok().unwrap().cache_hit));
    }

    #[test]
    fn failing_instances_do_not_sink_the_batch() {
        // A non-2-hop-colored instance errors; the valid ones still finish.
        let mut instances = lift_family(&[2, 3]);
        let bad = generators::cycle(4)
            .unwrap()
            .with_labels(vec![((), 1u32), ((), 2), ((), 1), ((), 2)])
            .unwrap();
        instances.insert(1, bad);
        let outcome = derandomize_batch(
            &RandomizedMis::new(),
            &instances,
            SearchStrategy::default(),
            &ExecConfig::default(),
            &BatchScheduler::with_threads(2),
            None,
        );
        assert_eq!(outcome.stats.succeeded, 2);
        assert_eq!(outcome.stats.failed, 1);
        assert!(!outcome.results[1].is_ok());
        assert!(outcome.results[0].is_ok() && outcome.results[2].is_ok());
    }

    #[test]
    fn pipeline_batch_is_valid_and_shares_stage2_work() {
        let nets: Vec<(LabeledGraph<()>, u64)> = (0..6)
            .map(|seed| (generators::cycle(9).unwrap().with_uniform_label(()), seed))
            .collect();
        let cache = Arc::new(DerandCache::new());
        let outcome = pipeline_batch(
            &RandomizedMis::new(),
            &nets,
            SearchStrategy::default(),
            &ExecConfig::default(),
            &BatchScheduler::with_threads(3),
            Some(&cache),
        );
        assert_eq!(outcome.stats.succeeded, 6);
        for ((net, _), run) in nets.iter().zip(outcome.results.iter()) {
            let run = run.ok().unwrap();
            assert!(MisProblem.is_valid_output(net, &run.outputs));
            let colored = net.graph().with_labels(run.coloring.clone()).unwrap();
            assert!(coloring::is_two_hop_coloring(&colored));
        }
        // The cache saw every stage-2 quotient; different seeds may or may
        // not collide, but the accounting adds up.
        let stats = outcome.stats.cache.unwrap();
        assert_eq!(stats.assignment_hits + stats.assignment_misses, 6);
    }

    #[test]
    fn cached_hit_is_indistinguishable_from_the_original() {
        // Run the base alone (miss), then a lift (hit): the lift's fields
        // must match what an uncached derandomizer reports.
        let family = lift_family(&[1, 4]);
        let cache = Arc::new(DerandCache::new());
        let alg = RandomizedMis::new();
        let cached = Derandomizer::new(alg).with_cache(Arc::clone(&cache));
        let warm = cached.run(&family[0]).unwrap();
        assert!(!warm.cache_hit);
        let hit = cached.run(&family[1]).unwrap();
        assert!(hit.cache_hit);
        let fresh = Derandomizer::new(alg).run(&family[1]).unwrap();
        assert_eq!(hit.outputs, fresh.outputs);
        assert_eq!(hit.assignment, fresh.assignment);
        assert_eq!(hit.attempts, fresh.attempts);
        assert_eq!(hit.simulation_rounds, fresh.simulation_rounds);
    }
}
