//! Candidate enumeration for `A_*`'s `Update-Graph` (paper, Section 3.1).
//!
//! A *candidate for phase `p`* at node `v` is a labeled graph `Ĝ` with
//! (C1) at most `p` nodes, (C2) a node `v̂` whose depth-`p` view equals
//! `v`'s, and (C3) whose `(î, ĉ)` part is an instance of `Π^c`.
//!
//! The paper quantifies over **all** labeled graphs, which is enumerable
//! here because of a connectivity observation: a candidate has at most
//! `p` nodes and is connected, so *every* candidate node lies within
//! `p - 1` hops of `v̂` — hence (by C2) every label occurring in a
//! candidate occurs as a mark in `v`'s depth-`p` view. Enumerating over
//! the view's label set is therefore **complete**, not a heuristic.

use anonet_graph::{iso, Graph, Label, LabeledGraph};

use crate::error::CoreError;
use crate::Result;

/// All connected simple graphs on exactly `n` labeled vertices, generated
/// as edge subsets of `K_n` (presentations, not isomorphism classes —
/// `A_*`'s minimal-candidate rule is invariant under duplicates).
///
/// # Errors
///
/// [`CoreError::EnumerationTooLarge`] for `n > 6` (the edge-subset count
/// is `2^(n(n-1)/2)`).
pub fn connected_graphs(n: usize) -> Result<Vec<Graph>> {
    if n == 0 || n > 6 {
        return Err(CoreError::EnumerationTooLarge { max_nodes: n, universe: 0 });
    }
    let pairs: Vec<(usize, usize)> =
        (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v))).collect();
    let mut graphs = Vec::new();
    for mask in 0u64..(1u64 << pairs.len()) {
        let edges: Vec<(usize, usize)> = pairs
            .iter()
            .enumerate()
            .filter(|(k, _)| (mask >> k) & 1 == 1)
            .map(|(_, &e)| e)
            .collect();
        let Ok(g) = Graph::from_edges(n, &edges) else { continue };
        if g.is_connected() {
            graphs.push(g);
        }
    }
    Ok(graphs)
}

/// [`connected_graphs`] deduplicated up to (unlabeled) isomorphism,
/// keeping the first presentation of each class.
///
/// Dropping duplicate presentations *before* labeling shrinks the
/// candidate pool by the OEIS A001187 / A001349 ratio (728 → 21 at
/// `n = 5`) and changes nothing observable: every labeled candidate over
/// a dropped presentation is isomorphic (transport the labeling along
/// the graph isomorphism) to a labeled candidate over the kept one, the
/// `Update-Graph` order `(|V̂_*|, s(Ĝ_*))` compares candidates through
/// their canonical quotient encodings (presentation-independent), and on
/// prime quotients the isomorphism is unique, so the simulated outcome at
/// the matched node is identical. The `pool_selection_is_invariant_
/// under_presentation_dedup` test in [`crate::astar_cache`] pins this.
///
/// # Errors
///
/// [`CoreError::EnumerationTooLarge`] as for [`connected_graphs`].
pub fn connected_graphs_up_to_iso(n: usize) -> Result<Vec<Graph>> {
    let mut classes: Vec<LabeledGraph<u8>> = Vec::new();
    let mut out = Vec::new();
    for g in connected_graphs(n)? {
        let plain = g.with_uniform_label(0u8);
        if classes.iter().any(|seen| iso::are_isomorphic(seen, &plain)) {
            continue;
        }
        classes.push(plain);
        out.push(g);
    }
    Ok(out)
}

/// All labelings of `n` vertices over `universe` (i.e. `universe^n`),
/// in lexicographic order of index vectors.
///
/// # Errors
///
/// [`CoreError::EnumerationTooLarge`] when `|universe|^n` exceeds
/// `2^20`.
pub fn labelings<L: Label>(universe: &[L], n: usize) -> Result<Vec<Vec<L>>> {
    let u = universe.len();
    if u == 0 {
        return Ok(Vec::new());
    }
    let total = (u as u128).checked_pow(n as u32).unwrap_or(u128::MAX);
    if total > (1 << 20) {
        return Err(CoreError::EnumerationTooLarge { max_nodes: n, universe: u });
    }
    let mut out = Vec::with_capacity(total as usize);
    let mut idx = vec![0usize; n];
    loop {
        out.push(idx.iter().map(|&i| universe[i].clone()).collect());
        // Increment the index vector (most significant = first position,
        // mirroring the canonical orders used elsewhere).
        let mut pos = n;
        loop {
            if pos == 0 {
                return Ok(out);
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < u {
                break;
            }
            idx[pos] = 0;
        }
    }
}

/// All labeled graphs with **at most** `max_nodes` nodes over the given
/// label universe — the raw candidate pool before conditions C2/C3.
///
/// Underlying graphs are deduplicated up to isomorphism
/// ([`connected_graphs_up_to_iso`]); the pool still covers every labeled
/// candidate up to isomorphism, which is all the minimal-candidate rule
/// can see.
///
/// # Errors
///
/// Enumeration-size errors from [`connected_graphs`] / [`labelings`].
pub fn candidate_pool<L: Label>(max_nodes: usize, universe: &[L]) -> Result<Vec<LabeledGraph<L>>> {
    pool_over(max_nodes, universe, connected_graphs_up_to_iso)
}

/// The pre-dedup pool: every *presentation* of every connected graph,
/// labeled — the paper's literal enumeration. Kept for the differential
/// test that the dedup does not move the `Update-Graph` selection.
///
/// # Errors
///
/// Enumeration-size errors from [`connected_graphs`] / [`labelings`].
pub fn candidate_pool_all_presentations<L: Label>(
    max_nodes: usize,
    universe: &[L],
) -> Result<Vec<LabeledGraph<L>>> {
    pool_over(max_nodes, universe, connected_graphs)
}

fn pool_over<L: Label>(
    max_nodes: usize,
    universe: &[L],
    graphs: impl Fn(usize) -> Result<Vec<Graph>>,
) -> Result<Vec<LabeledGraph<L>>> {
    let mut pool = Vec::new();
    for n in 1..=max_nodes {
        for g in graphs(n)? {
            for labels in labelings(universe, n)? {
                pool.push(g.with_labels(labels).expect("labeling length matches by construction"));
            }
        }
    }
    Ok(pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_graph_counts_match_oeis() {
        // Numbers of connected labeled graphs on n nodes: OEIS A001187.
        assert_eq!(connected_graphs(1).unwrap().len(), 1);
        assert_eq!(connected_graphs(2).unwrap().len(), 1);
        assert_eq!(connected_graphs(3).unwrap().len(), 4);
        assert_eq!(connected_graphs(4).unwrap().len(), 38);
        assert_eq!(connected_graphs(5).unwrap().len(), 728);
    }

    #[test]
    fn oversized_enumerations_are_rejected() {
        assert!(connected_graphs(7).is_err());
        let universe: Vec<u32> = (0..40).collect();
        assert!(labelings(&universe, 6).is_err());
    }

    #[test]
    fn labelings_cover_the_product_space() {
        let ls = labelings(&[1u8, 2, 3], 2).unwrap();
        assert_eq!(ls.len(), 9);
        assert_eq!(ls[0], vec![1, 1]);
        assert_eq!(ls[8], vec![3, 3]);
        // Lexicographic and duplicate-free.
        let mut sorted = ls.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, ls);
    }

    #[test]
    fn empty_universe_yields_nothing() {
        let ls = labelings::<u8>(&[], 3).unwrap();
        assert!(ls.is_empty());
    }

    #[test]
    fn iso_dedup_counts_match_oeis() {
        // Connected graphs on n unlabeled nodes: OEIS A001349.
        assert_eq!(connected_graphs_up_to_iso(1).unwrap().len(), 1);
        assert_eq!(connected_graphs_up_to_iso(2).unwrap().len(), 1);
        assert_eq!(connected_graphs_up_to_iso(3).unwrap().len(), 2);
        assert_eq!(connected_graphs_up_to_iso(4).unwrap().len(), 6);
        assert_eq!(connected_graphs_up_to_iso(5).unwrap().len(), 21);
    }

    #[test]
    fn iso_dedup_keeps_first_presentations() {
        // Dedup keeps the earliest presentation of each class, so the
        // deduped list is a subsequence of the full enumeration and every
        // dropped presentation is isomorphic to a kept one.
        let full: Vec<_> =
            connected_graphs(4).unwrap().into_iter().map(|g| g.with_uniform_label(0u8)).collect();
        let kept: Vec<_> = connected_graphs_up_to_iso(4)
            .unwrap()
            .into_iter()
            .map(|g| g.with_uniform_label(0u8))
            .collect();
        let mut cursor = 0usize;
        for k in &kept {
            let pos = full[cursor..]
                .iter()
                .position(|f| {
                    f.graph().edges().collect::<Vec<_>>() == k.graph().edges().collect::<Vec<_>>()
                })
                .expect("kept graphs appear in enumeration order");
            cursor += pos + 1;
        }
        for f in &full {
            assert!(kept.iter().any(|k| iso::are_isomorphic(k, f)));
        }
    }

    #[test]
    fn pool_sizes_compose() {
        let universe = vec![1u8, 2];
        let pool = candidate_pool(3, &universe).unwrap();
        // n=1: 1 graph × 2 labelings; n=2: 1 × 4; n=3: 2 classes × 8
        // (the four presentations collapse to path-3 and triangle).
        assert_eq!(pool.len(), 2 + 4 + 16);
        assert!(pool.iter().all(|g| g.graph().is_connected()));
        // The literal presentation pool is strictly larger.
        let full = candidate_pool_all_presentations(3, &universe).unwrap();
        assert_eq!(full.len(), 2 + 4 + 32);
    }
}
