//! Candidate enumeration for `A_*`'s `Update-Graph` (paper, Section 3.1).
//!
//! A *candidate for phase `p`* at node `v` is a labeled graph `Ĝ` with
//! (C1) at most `p` nodes, (C2) a node `v̂` whose depth-`p` view equals
//! `v`'s, and (C3) whose `(î, ĉ)` part is an instance of `Π^c`.
//!
//! The paper quantifies over **all** labeled graphs, which is enumerable
//! here because of a connectivity observation: a candidate has at most
//! `p` nodes and is connected, so *every* candidate node lies within
//! `p - 1` hops of `v̂` — hence (by C2) every label occurring in a
//! candidate occurs as a mark in `v`'s depth-`p` view. Enumerating over
//! the view's label set is therefore **complete**, not a heuristic.

use anonet_graph::{Graph, Label, LabeledGraph};

use crate::error::CoreError;
use crate::Result;

/// All connected simple graphs on exactly `n` labeled vertices, generated
/// as edge subsets of `K_n` (presentations, not isomorphism classes —
/// `A_*`'s minimal-candidate rule is invariant under duplicates).
///
/// # Errors
///
/// [`CoreError::EnumerationTooLarge`] for `n > 6` (the edge-subset count
/// is `2^(n(n-1)/2)`).
pub fn connected_graphs(n: usize) -> Result<Vec<Graph>> {
    if n == 0 || n > 6 {
        return Err(CoreError::EnumerationTooLarge { max_nodes: n, universe: 0 });
    }
    let pairs: Vec<(usize, usize)> =
        (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v))).collect();
    let mut graphs = Vec::new();
    for mask in 0u64..(1u64 << pairs.len()) {
        let edges: Vec<(usize, usize)> = pairs
            .iter()
            .enumerate()
            .filter(|(k, _)| (mask >> k) & 1 == 1)
            .map(|(_, &e)| e)
            .collect();
        let Ok(g) = Graph::from_edges(n, &edges) else { continue };
        if g.is_connected() {
            graphs.push(g);
        }
    }
    Ok(graphs)
}

/// All labelings of `n` vertices over `universe` (i.e. `universe^n`),
/// in lexicographic order of index vectors.
///
/// # Errors
///
/// [`CoreError::EnumerationTooLarge`] when `|universe|^n` exceeds
/// `2^20`.
pub fn labelings<L: Label>(universe: &[L], n: usize) -> Result<Vec<Vec<L>>> {
    let u = universe.len();
    if u == 0 {
        return Ok(Vec::new());
    }
    let total = (u as u128).checked_pow(n as u32).unwrap_or(u128::MAX);
    if total > (1 << 20) {
        return Err(CoreError::EnumerationTooLarge { max_nodes: n, universe: u });
    }
    let mut out = Vec::with_capacity(total as usize);
    let mut idx = vec![0usize; n];
    loop {
        out.push(idx.iter().map(|&i| universe[i].clone()).collect());
        // Increment the index vector (most significant = first position,
        // mirroring the canonical orders used elsewhere).
        let mut pos = n;
        loop {
            if pos == 0 {
                return Ok(out);
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < u {
                break;
            }
            idx[pos] = 0;
        }
    }
}

/// All labeled graphs with **at most** `max_nodes` nodes over the given
/// label universe — the raw candidate pool before conditions C2/C3.
///
/// # Errors
///
/// Enumeration-size errors from [`connected_graphs`] / [`labelings`].
pub fn candidate_pool<L: Label>(max_nodes: usize, universe: &[L]) -> Result<Vec<LabeledGraph<L>>> {
    let mut pool = Vec::new();
    for n in 1..=max_nodes {
        for g in connected_graphs(n)? {
            for labels in labelings(universe, n)? {
                pool.push(g.with_labels(labels).expect("labeling length matches by construction"));
            }
        }
    }
    Ok(pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_graph_counts_match_oeis() {
        // Numbers of connected labeled graphs on n nodes: OEIS A001187.
        assert_eq!(connected_graphs(1).unwrap().len(), 1);
        assert_eq!(connected_graphs(2).unwrap().len(), 1);
        assert_eq!(connected_graphs(3).unwrap().len(), 4);
        assert_eq!(connected_graphs(4).unwrap().len(), 38);
        assert_eq!(connected_graphs(5).unwrap().len(), 728);
    }

    #[test]
    fn oversized_enumerations_are_rejected() {
        assert!(connected_graphs(7).is_err());
        let universe: Vec<u32> = (0..40).collect();
        assert!(labelings(&universe, 6).is_err());
    }

    #[test]
    fn labelings_cover_the_product_space() {
        let ls = labelings(&[1u8, 2, 3], 2).unwrap();
        assert_eq!(ls.len(), 9);
        assert_eq!(ls[0], vec![1, 1]);
        assert_eq!(ls[8], vec![3, 3]);
        // Lexicographic and duplicate-free.
        let mut sorted = ls.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, ls);
    }

    #[test]
    fn empty_universe_yields_nothing() {
        let ls = labelings::<u8>(&[], 3).unwrap();
        assert!(ls.is_empty());
    }

    #[test]
    fn pool_sizes_compose() {
        let universe = vec![1u8, 2];
        let pool = candidate_pool(3, &universe).unwrap();
        // n=1: 1 graph × 2 labelings; n=2: 1 × 4; n=3: 4 × 8.
        assert_eq!(pool.len(), 2 + 4 + 32);
        assert!(pool.iter().all(|g| g.graph().is_connected()));
    }
}
