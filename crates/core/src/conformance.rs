//! Differential oracles tying the paper's three faces of derandomization
//! together: the engineering-grade [`Derandomizer`], the infinity-model
//! `A_∞` ([`solve_infinity`](crate::infinity::solve_infinity)), and the
//! literal `A_*` ([`run_astar`](crate::astar::run_astar)).
//!
//! Each oracle returns `Ok` when the two sides agree and a
//! [`CoreError::ConformanceMismatch`](crate::CoreError::ConformanceMismatch)
//! naming the oracle and the first disagreeing node otherwise. They are
//! the core entry points of `anonet-testkit`, but are plain library
//! functions — usable from any test or experiment.

use anonet_graph::{BitString, Label, LabeledGraph};
use anonet_runtime::Problem;
use anonet_runtime::{run, BitAssignment, ExecConfig, Oblivious, ObliviousAlgorithm, TapeSource};
use anonet_views::{quotient, ViewMode};

use crate::astar::{run_astar, run_astar_reference, run_astar_threaded, AStarConfig, AStarRun};
use crate::derandomizer::{DerandomizedRun, Derandomizer};
use crate::error::CoreError;
use crate::infinity::solve_infinity;
use crate::search::SearchStrategy;
use crate::Result;

fn mismatch(oracle: &str, detail: String) -> CoreError {
    CoreError::ConformanceMismatch { oracle: oracle.to_string(), detail }
}

/// **View-graph agreement** — the general form of `A_* ≡ A_∞`.
///
/// The quotient of a 2-hop colored instance is itself a 2-hop colored
/// *prime* instance, and the derandomizer is a pure function of views; so
/// derandomizing the instance and derandomizing its own quotient
/// presentation must select the same canonical simulation, giving
///
/// ```text
/// derand(I).outputs[v] == derand(G_*).outputs[class_of(v)]   for all v.
/// ```
///
/// Unlike the exhaustive `A_∞` differential this holds for **every**
/// algorithm and strategy (including ones whose tapes are too long to
/// enumerate), which is what makes it the workhorse oracle.
///
/// Returns the instance's own run on success, so callers can chain
/// further oracles without re-deriving it.
///
/// # Errors
///
/// Any [`Derandomizer::run`] error, or
/// [`CoreError::ConformanceMismatch`] on disagreement.
pub fn view_graph_agreement<A, C>(
    alg: &A,
    instance: &LabeledGraph<(A::Input, C)>,
    strategy: SearchStrategy,
    config: &ExecConfig,
) -> Result<DerandomizedRun<A::Output>>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
    C: Label,
{
    let q = quotient(instance, ViewMode::Portless)?;
    let d = Derandomizer::new(alg.clone()).with_strategy(strategy).with_config(*config);
    let full = d.run(instance)?;
    let on_quotient = d.run(q.graph())?;
    for (v, &c) in q.class_of().iter().enumerate() {
        if full.outputs[v] != on_quotient.outputs[c.index()] {
            return Err(mismatch(
                "view-graph-agreement",
                format!(
                    "node {v} (class {}): instance output {:?} != quotient output {:?}",
                    c.index(),
                    full.outputs[v],
                    on_quotient.outputs[c.index()]
                ),
            ));
        }
    }
    Ok(full)
}

/// **Randomized replay** — the lifting lemma as an executable check.
///
/// Lifts the derandomizer's canonical quotient assignment along the
/// projection to a full-instance tape, replays the *randomized* algorithm
/// on the real network with that tape, and demands byte-equal outputs.
/// This ties the derandomizer to the live engine: the canonical
/// simulation is not just internally consistent, it is a genuine
/// execution of `A_R` that the runtime reproduces.
///
/// # Errors
///
/// [`CoreError::ConformanceMismatch`] if the replay fails to complete or
/// disagrees with `drun.outputs`.
pub fn replay_on_full_instance<A, C>(
    alg: &A,
    instance: &LabeledGraph<(A::Input, C)>,
    drun: &DerandomizedRun<A::Output>,
    config: &ExecConfig,
) -> Result<()>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
    C: Label,
{
    let q = quotient(instance, ViewMode::Portless)?;
    let tapes: Vec<BitString> = q
        .class_of()
        .iter()
        .map(|&c| drun.assignment.tape(c).cloned().unwrap_or_default())
        .collect();
    let mut source = TapeSource::new(BitAssignment::new(tapes));
    let inputs = instance.map_labels(|(i, _)| i.clone());
    let exec = run(&Oblivious(alg.clone()), &inputs, &mut source, config)?;
    if !exec.is_successful() {
        return Err(mismatch(
            "randomized-replay",
            format!("lifted tape replay did not complete: status {:?}", exec.status()),
        ));
    }
    let outputs = exec.outputs_unwrapped();
    for (v, (got, want)) in outputs.iter().zip(drun.outputs.iter()).enumerate() {
        if got != want {
            return Err(mismatch(
                "randomized-replay",
                format!("node {v}: replayed output {got:?} != derandomized output {want:?}"),
            ));
        }
    }
    Ok(())
}

/// **`A_* ≡ A_∞`, literally** — the paper-exact differential.
///
/// Runs the faithful phase-structured `A_*` (Figure 3) and the
/// infinity-model `A_∞` (exhaustive minimal assignment) on the same
/// instance and demands identical outputs. Feasible only where both are:
/// tiny quotients (3–4 nodes) and short tapes, i.e. MIS/matching-class
/// algorithms — use [`view_graph_agreement`] everywhere else.
///
/// Returns the agreed outputs.
///
/// # Errors
///
/// Budget errors from either side, or [`CoreError::ConformanceMismatch`].
pub fn astar_infinity_agreement<A, P, C>(
    alg: &A,
    problem: &P,
    instance: &LabeledGraph<(A::Input, C)>,
    astar_cfg: &AStarConfig,
    max_total_bits: usize,
) -> Result<Vec<A::Output>>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
    P: Problem<Input = A::Input>,
    C: Label,
{
    let astar = run_astar(alg, problem, instance, astar_cfg)?;
    let inf = solve_infinity(alg, instance, max_total_bits, &astar_cfg.sim_config)?;
    for (v, (a, b)) in astar.outputs.iter().zip(inf.outputs.iter()).enumerate() {
        if a != b {
            return Err(mismatch(
                "astar-infinity",
                format!("node {v}: A_* output {a:?} != A_infinity output {b:?}"),
            ));
        }
    }
    Ok(astar.outputs)
}

/// **Fast `A_*` ≡ reference `A_*`** — the memoized engine against the
/// literal Figure-3 enumeration, byte-for-byte.
///
/// Runs [`run_astar_reference`] and [`run_astar`] and demands equality of
/// *every* observable field of the run — outputs, output phases, phase
/// count, equivalent rounds, and the final bitstrings at byte level —
/// then repeats the comparison for [`run_astar_threaded`] at each thread
/// count in `threads`. One engine erroring while the other succeeds is a
/// mismatch; both erroring propagates the reference's error (the suite
/// treats budget errors as out-of-scope, mismatches as failures).
///
/// Returns the agreed run.
///
/// # Errors
///
/// Budget/view errors when both engines fail, or
/// [`CoreError::ConformanceMismatch`] (oracle `astar-fast-vs-reference`).
pub fn astar_fast_reference_agreement<A, P, C>(
    alg: &A,
    problem: &P,
    instance: &LabeledGraph<(A::Input, C)>,
    astar_cfg: &AStarConfig,
    threads: &[usize],
) -> Result<AStarRun<A::Output>>
where
    A: ObliviousAlgorithm + Clone + Sync,
    A::Input: Label + Sync,
    A::Output: Send,
    P: Problem<Input = A::Input>,
    C: Label + Sync,
{
    const ORACLE: &str = "astar-fast-vs-reference";
    let reference = run_astar_reference(alg, problem, instance, astar_cfg);
    let fast = run_astar(alg, problem, instance, astar_cfg);
    let (reference, fast) = match (reference, fast) {
        (Ok(r), Ok(f)) => (r, f),
        (Err(e), Err(_)) => return Err(e),
        (Ok(_), Err(e)) => {
            return Err(mismatch(ORACLE, format!("fast engine failed, reference succeeded: {e}")));
        }
        (Err(e), Ok(_)) => {
            return Err(mismatch(ORACLE, format!("reference failed, fast engine succeeded: {e}")));
        }
    };
    compare_astar_runs(ORACLE, "fast", &fast, &reference)?;
    for &t in threads {
        match run_astar_threaded(alg, problem, instance, astar_cfg, t, &anonet_obs::noop()) {
            Ok(par) => compare_astar_runs(ORACLE, &format!("threaded({t})"), &par, &reference)?,
            Err(e) => {
                return Err(mismatch(
                    ORACLE,
                    format!("threaded({t}) failed, reference succeeded: {e}"),
                ));
            }
        }
    }
    Ok(fast)
}

/// Byte-level equality of two [`AStarRun`]s, every field.
fn compare_astar_runs<O: PartialEq + std::fmt::Debug>(
    oracle: &str,
    variant: &str,
    got: &AStarRun<O>,
    want: &AStarRun<O>,
) -> Result<()> {
    for (v, (a, b)) in got.outputs.iter().zip(want.outputs.iter()).enumerate() {
        if a != b {
            return Err(mismatch(
                oracle,
                format!("{variant}: node {v} output {a:?} != reference output {b:?}"),
            ));
        }
    }
    if got.output_phase != want.output_phase {
        return Err(mismatch(
            oracle,
            format!(
                "{variant}: output phases {:?} != reference {:?}",
                got.output_phase, want.output_phase
            ),
        ));
    }
    if got.phases_used != want.phases_used || got.equivalent_rounds != want.equivalent_rounds {
        return Err(mismatch(
            oracle,
            format!(
                "{variant}: phases/rounds ({}, {}) != reference ({}, {})",
                got.phases_used, got.equivalent_rounds, want.phases_used, want.equivalent_rounds
            ),
        ));
    }
    if got.final_bits != want.final_bits {
        return Err(mismatch(
            oracle,
            format!(
                "{variant}: final bits {:?} != reference {:?}",
                got.final_bits, want.final_bits
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_algorithms::coloring::RandomizedColoring;
    use anonet_algorithms::mis::RandomizedMis;
    use anonet_algorithms::problems::MisProblem;
    use anonet_graph::{coloring, generators};

    fn lifted_c3(m: usize) -> LabeledGraph<((), u32)> {
        let l = anonet_graph::lift::cyclic_cycle_lift(3, m).unwrap();
        l.lift_labels(&[((), 1u32), ((), 2), ((), 3)]).unwrap()
    }

    #[test]
    fn view_graph_agreement_holds_for_mis_and_coloring() {
        let cfg = ExecConfig::default();
        for m in 1..=4 {
            let inst = lifted_c3(m);
            view_graph_agreement(&RandomizedMis::new(), &inst, SearchStrategy::default(), &cfg)
                .unwrap();
            view_graph_agreement(
                &RandomizedColoring::new(),
                &inst,
                SearchStrategy::default(),
                &cfg,
            )
            .unwrap();
        }
        // Also on a trivial-quotient (prime) instance.
        let g = generators::petersen();
        let inst = g.with_uniform_label(()).zip(&coloring::greedy_two_hop_coloring(&g)).unwrap();
        view_graph_agreement(
            &RandomizedMis::new(),
            &inst,
            SearchStrategy::default(),
            &ExecConfig::default(),
        )
        .unwrap();
    }

    #[test]
    fn replay_reproduces_derandomized_outputs() {
        let cfg = ExecConfig::default();
        let inst = lifted_c3(5);
        let drun = Derandomizer::new(RandomizedMis::new()).run(&inst).unwrap();
        replay_on_full_instance(&RandomizedMis::new(), &inst, &drun, &cfg).unwrap();
    }

    #[test]
    fn replay_detects_forged_outputs() {
        let cfg = ExecConfig::default();
        let inst = lifted_c3(2);
        let mut drun = Derandomizer::new(RandomizedMis::new()).run(&inst).unwrap();
        drun.outputs[0] = !drun.outputs[0];
        let err = replay_on_full_instance(&RandomizedMis::new(), &inst, &drun, &cfg).unwrap_err();
        assert!(matches!(err, CoreError::ConformanceMismatch { ref oracle, .. }
            if oracle == "randomized-replay"));
        assert!(err.to_string().contains("randomized-replay"));
    }

    #[test]
    fn fast_reference_agreement_holds_on_a_lifted_cycle() {
        // C6 as a 2-lift of the colored triangle: nontrivial fibers, a
        // 3-node quotient, and two distinct universes per phase.
        let run = astar_fast_reference_agreement(
            &RandomizedMis::new(),
            &MisProblem,
            &lifted_c3(2),
            &AStarConfig::default(),
            &[1, 2, 8],
        )
        .unwrap();
        assert_eq!(run.outputs.len(), 6);
    }

    #[test]
    fn astar_matches_infinity_on_small_quotients() {
        let outputs = astar_infinity_agreement(
            &RandomizedMis::new(),
            &MisProblem,
            &lifted_c3(3),
            &AStarConfig::default(),
            24,
        )
        .unwrap();
        assert_eq!(outputs.iter().filter(|&&b| b).count(), 3);
    }
}
