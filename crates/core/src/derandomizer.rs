//! The practical derandomizer: quotient → canonical simulation → lift.
//!
//! This is the construction the paper's `A_*` provably converges to
//! (Lemma 7): from phase `2n` on, every node has identified the true
//! finite view graph `I_*` and runs the same canonical simulation on it.
//! The derandomizer implements that converged behaviour directly:
//!
//! 1. compute the finite view graph `G_*` of the 2-hop colored instance
//!    and each node's image in it (both are functions of the node's view
//!    alone — classes *are* views);
//! 2. select the canonical successful simulation of the randomized
//!    algorithm `A_R` on the quotient ([`SearchStrategy`]);
//! 3. lift the quotient outputs along the projection.
//!
//! Every step is derived from views only, so the whole computation is
//! anonymous-computable; `anonet-core::astar` realizes it as the paper's
//! literal phase-by-phase algorithm, and experiment E9 checks the two
//! agree where both are feasible.

use std::sync::Arc;
use std::time::{Duration, Instant};

use anonet_batch::{CachedAssignment, DerandCache};
use anonet_graph::{BitString, Label, LabeledGraph};
use anonet_obs::{names, noop, Recorder, SharedRecorder, Span};
use anonet_runtime::{run, BitAssignment, ExecConfig, Oblivious, ObliviousAlgorithm, TapeSource};
use anonet_views::{canonical_order, quotient, thread_arena_stats, BoundedRefinement, ViewMode};

use crate::search::{canonical_successful_simulation, SearchStrategy};
use crate::Result;

/// The outcome of derandomizing one instance.
#[derive(Clone, Debug)]
pub struct DerandomizedRun<O> {
    /// Per-node outputs (lifted from the quotient simulation).
    pub outputs: Vec<O>,
    /// Size of the quotient `|V_*|`.
    pub quotient_nodes: usize,
    /// Fiber size `|V| / |V_*|`.
    pub multiplicity: usize,
    /// The bit assignment that induced the selected simulation.
    pub assignment: BitAssignment,
    /// Rounds the quotient simulation ran.
    pub simulation_rounds: usize,
    /// Simulations attempted before the canonical one succeeded. On a cache
    /// hit this reports the attempts of the *original* search, so the run is
    /// indistinguishable from an uncached one.
    pub attempts: usize,
    /// `true` if the canonical assignment came out of a [`DerandCache`].
    pub cache_hit: bool,
    /// Wall time of stage 1 (quotient construction + canonical order).
    pub quotient_time: Duration,
    /// Wall time of stage 2 (canonical-simulation search, or the single
    /// replay on a cache hit) plus the output lift.
    pub search_time: Duration,
}

/// Derandomizes a port-oblivious Las-Vegas algorithm on 2-hop colored
/// instances (paper, Theorem 1's deterministic stage).
///
/// # Example
///
/// ```
/// use anonet_graph::generators;
/// use anonet_runtime::Problem;
/// use anonet_algorithms::{mis::RandomizedMis, problems::MisProblem};
/// use anonet_core::Derandomizer;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Figure 2's colored C6 (a product of C3): solve MIS deterministically.
/// let c6 = generators::cycle(6)?.with_labels(vec![((), 1u32), ((), 2), ((), 3),
///                                                 ((), 1), ((), 2), ((), 3)])?;
/// let run = Derandomizer::new(RandomizedMis::new()).run(&c6)?;
/// assert_eq!(run.quotient_nodes, 3);
/// let plain = generators::cycle(6)?.with_uniform_label(());
/// assert!(MisProblem.is_valid_output(&plain, &run.outputs));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Derandomizer<A> {
    alg: A,
    strategy: SearchStrategy,
    config: ExecConfig,
    cache: Option<Arc<DerandCache>>,
    recorder: SharedRecorder,
}

impl<A> Derandomizer<A>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
{
    /// Creates a derandomizer with the default (seeded) search strategy.
    pub fn new(alg: A) -> Self {
        Derandomizer {
            alg,
            strategy: SearchStrategy::default(),
            config: ExecConfig::default(),
            cache: None,
            recorder: noop(),
        }
    }

    /// Overrides the canonical-simulation search strategy.
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the simulation execution config.
    pub fn with_config(mut self, config: ExecConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a content-addressed [`DerandCache`]. Runs then check the
    /// cache before searching: on a hit the whole canonical-assignment
    /// search collapses into a single tape replay on the quotient, and on a
    /// miss the found assignment is stored under `(problem-id, s(G_*))` for
    /// every later instance with an isomorphic quotient (by Lemma 3, every
    /// lift of the same base). The cache never changes outputs — only how
    /// much work it takes to reach them.
    pub fn with_cache(mut self, cache: Arc<DerandCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches an observability [`Recorder`]: runs then report spans for
    /// every stage (`derandomize/{views,factor,search,replay,lift}`),
    /// `cache.hit`/`cache.miss` counters, and quotient-shape histograms.
    /// The default is the no-op recorder — zero cost, zero behavior
    /// change.
    pub fn with_recorder(mut self, recorder: SharedRecorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The assignment-table namespace: the algorithm type, the search
    /// strategy, and the round cap all shape which canonical assignment is
    /// selected, so they are all part of the problem id. Keeps, e.g.,
    /// `Exhaustive` and `Seeded` entries for the same algorithm apart.
    fn problem_id(&self) -> String {
        format!("{}|{:?}|r{}", std::any::type_name::<A>(), self.strategy, self.config.max_rounds)
    }

    /// Runs the deterministic stage on a 2-hop colored instance: labels
    /// are `(input, color)` pairs, exactly the paper's `I^c = (V, E, i, c)`.
    ///
    /// Deterministic: same instance ⇒ same outputs, no randomness consumed
    /// on the real network.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotTwoHopColored`](crate::CoreError::NotTwoHopColored)
    /// if `c` is not a 2-hop coloring; search-budget errors per strategy.
    pub fn run<C: Label>(
        &self,
        instance: &LabeledGraph<(A::Input, C)>,
    ) -> Result<DerandomizedRun<A::Output>> {
        let rec: &dyn Recorder = &*self.recorder;
        let observing = rec.is_enabled();
        let _derand_span = Span::new(rec, names::SPAN_DERANDOMIZE);
        let arena_before = thread_arena_stats();

        // Step 1: the finite view graph of the full (i, c)-labeled instance.
        let t0 = Instant::now();
        let views_span = Span::new(rec, names::SPAN_VIEWS);
        let q = quotient(instance, ViewMode::Portless)?;
        drop(views_span);
        let factor_span = Span::new(rec, names::SPAN_FACTOR);
        let order = canonical_order(q.graph(), ViewMode::Portless)?;
        drop(factor_span);
        let j = q.graph().map_labels(|(i, _c)| i.clone());
        let quotient_time = t0.elapsed();
        if observing {
            rec.histogram(names::DERAND_QUOTIENT_NODES, q.graph().node_count() as u64);
            rec.histogram(names::DERAND_MULTIPLICITY, q.multiplicity().unwrap_or(0) as u64);
            rec.histogram(
                names::DERAND_VIEW_DEPTH,
                BoundedRefinement::compute(instance, ViewMode::Portless).stabilization_depth()
                    as u64,
            );
        }

        // Step 1½: the content address s(G_*) — free, the canonical order
        // is already in hand. A hit turns the search into one replay.
        let t1 = Instant::now();
        let mut address: Option<(String, Vec<u8>)> = None;
        if let Some(cache) = &self.cache {
            let key = anonet_graph::canonical::encode_with_order(q.graph(), &order);
            cache.record_quotient(&key, q.graph().node_count(), q.multiplicity().unwrap_or(0));
            let problem = self.problem_id();
            if let Some(hit) = cache.lookup_assignment(&problem, &key) {
                if hit.tapes.len() == order.len() {
                    // Cached tapes are by canonical position; reindex them
                    // to this presentation's node ids before replaying.
                    let mut tapes = vec![BitString::new(); order.len()];
                    for (pos, &v) in order.iter().enumerate() {
                        tapes[v.index()] = hit.tapes[pos].clone();
                    }
                    let assignment = BitAssignment::new(tapes);
                    let replay_span = Span::new(rec, names::SPAN_REPLAY);
                    let mut src = TapeSource::new(assignment.clone());
                    let exec = run(&Oblivious(self.alg.clone()), &j, &mut src, &self.config)?;
                    drop(replay_span);
                    if exec.is_successful() {
                        if observing {
                            rec.counter(names::CACHE_HIT, 1);
                            rec.histogram(names::CACHE_BYTES, cache.stats().bytes as u64);
                            record_view_obs(rec, arena_before);
                        }
                        let lift_span = Span::new(rec, names::SPAN_LIFT);
                        let qouts = exec.outputs_unwrapped();
                        let outputs = q
                            .class_of()
                            .iter()
                            .map(|&c| qouts[c.index()].clone())
                            .collect::<Vec<_>>();
                        drop(lift_span);
                        return Ok(DerandomizedRun {
                            outputs,
                            quotient_nodes: q.graph().node_count(),
                            multiplicity: q.multiplicity().unwrap_or(0),
                            assignment,
                            simulation_rounds: hit.simulation_rounds,
                            attempts: hit.attempts,
                            cache_hit: true,
                            quotient_time,
                            search_time: t1.elapsed(),
                        });
                    }
                    // The replay failed: a foreign entry (e.g. a key
                    // collision is impossible, but an incompatible config
                    // is not) — fall through to the real search.
                }
            }
            address = Some((problem, key));
        }

        // Step 2: canonical successful simulation of A_R on J = (V_*, E_*, i_*).
        if observing && self.cache.is_some() {
            rec.counter(names::CACHE_MISS, 1);
        }
        let search_span = Span::new(rec, names::SPAN_SEARCH);
        let sim =
            canonical_successful_simulation(&self.alg, &j, &order, self.strategy, &self.config)?;
        drop(search_span);
        if observing {
            rec.counter(names::SEARCH_ATTEMPTS, sim.attempts as u64);
        }

        // Publish the found assignment under its content address, tapes
        // keyed by canonical position so any isomorphic presentation can
        // replay them.
        if let (Some(cache), Some((problem, key))) = (&self.cache, address) {
            let tapes = order
                .iter()
                .map(|&v| sim.assignment.tape(v).cloned().unwrap_or_default())
                .collect();
            cache.insert_assignment(
                &problem,
                &key,
                CachedAssignment {
                    tapes,
                    attempts: sim.attempts,
                    simulation_rounds: sim.execution.rounds(),
                },
            );
        }

        // Step 3: lift outputs along the projection.
        if observing {
            if let Some(cache) = &self.cache {
                rec.histogram(names::CACHE_BYTES, cache.stats().bytes as u64);
            }
            record_view_obs(rec, arena_before);
        }
        let lift_span = Span::new(rec, names::SPAN_LIFT);
        let qouts = sim.execution.outputs_unwrapped();
        let outputs = q.class_of().iter().map(|&c| qouts[c.index()].clone()).collect::<Vec<_>>();
        drop(lift_span);

        Ok(DerandomizedRun {
            outputs,
            quotient_nodes: q.graph().node_count(),
            multiplicity: q.multiplicity().unwrap_or(0),
            assignment: sim.assignment,
            simulation_rounds: sim.execution.rounds(),
            attempts: sim.attempts,
            cache_hit: false,
            quotient_time,
            search_time: t1.elapsed(),
        })
    }
}

/// Emits this run's view-machinery deltas: interner hit/miss counters and
/// the number of arena vertices built (a per-run gauge, recorded as a
/// histogram sample — the [`Recorder`] surface has no gauge type).
fn record_view_obs(rec: &dyn Recorder, before: anonet_views::ArenaStats) {
    let now = thread_arena_stats();
    rec.counter(names::VIEWS_INTERNER_HIT, now.interner_hits.saturating_sub(before.interner_hits));
    rec.counter(
        names::VIEWS_INTERNER_MISS,
        now.interner_misses.saturating_sub(before.interner_misses),
    );
    rec.histogram(names::VIEWS_ARENA_NODES, now.nodes_built.saturating_sub(before.nodes_built));
}

/// Derandomizes an arbitrary **port-sensitive** algorithm on a 2-hop
/// colored instance by composing the [`Derandomizer`] with the color-based
/// port emulation of the paper's Section 1.3 remark
/// ([`VirtualPorts`](anonet_algorithms::emulation::VirtualPorts)).
///
/// The emulated algorithm behaves exactly as the original would on the
/// graph whose ports sort each adjacency list by neighbor color; since a
/// correct anonymous algorithm must be correct under *every* port
/// numbering, the lifted outputs are valid. This closes the last gap in
/// the Theorem-1 reproduction: **every** Las-Vegas anonymous algorithm —
/// port-sensitive or not — derandomizes given a 2-hop coloring.
///
/// # Errors
///
/// As [`Derandomizer::run`].
pub fn derandomize_port_sensitive<A, C>(
    alg: A,
    colors: &LabeledGraph<C>,
    strategy: crate::SearchStrategy,
) -> Result<DerandomizedRun<A::Output>>
where
    A: anonet_runtime::Algorithm<Input = ()> + Clone,
    A::Message: Ord,
    C: Label,
{
    let instance = colors.map_labels(|c| (((), c.clone()), c.clone()));
    Derandomizer::new(anonet_algorithms::emulation::VirtualPorts::<A, C>::new(alg))
        .with_strategy(strategy)
        .run(&instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_algorithms::coloring::RandomizedColoring;
    use anonet_algorithms::mis::RandomizedMis;
    use anonet_algorithms::problems::{GreedyColoringProblem, MisProblem};
    use anonet_graph::{coloring, generators, Graph};
    use anonet_runtime::Problem;

    fn colored_instance(g: &Graph) -> LabeledGraph<((), u32)> {
        let colors = coloring::greedy_two_hop_coloring(g);
        g.with_uniform_label(()).zip(&colors).unwrap()
    }

    fn lifted_instance(m: usize) -> (LabeledGraph<((), u32)>, Vec<anonet_graph::NodeId>) {
        let l = anonet_graph::lift::cyclic_cycle_lift(3, m).unwrap();
        let inst = l.lift_labels(&[((), 1u32), ((), 2), ((), 3)]).unwrap();
        (inst, l.projection().to_vec())
    }

    #[test]
    fn derandomized_mis_is_valid_across_families() {
        let graphs = vec![
            generators::cycle(5).unwrap(),
            generators::path(7).unwrap(),
            generators::petersen(),
            generators::grid(3, 3, false).unwrap(),
        ];
        for g in graphs {
            let inst = colored_instance(&g);
            let run = Derandomizer::new(RandomizedMis::new()).run(&inst).unwrap();
            let plain = g.with_uniform_label(());
            assert!(
                MisProblem.is_valid_output(&plain, &run.outputs),
                "invalid derandomized MIS on {g}"
            );
        }
    }

    #[test]
    fn derandomized_coloring_is_valid() {
        let g = generators::petersen();
        let inst = colored_instance(&g);
        let run = Derandomizer::new(RandomizedColoring::new()).run(&inst).unwrap();
        let plain = g.with_uniform_label(());
        assert!(GreedyColoringProblem.is_valid_output(&plain, &run.outputs));
    }

    #[test]
    fn is_deterministic() {
        let (inst, _) = lifted_instance(4);
        let d = Derandomizer::new(RandomizedMis::new());
        let a = d.run(&inst).unwrap();
        let b = d.run(&inst).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn nontrivial_quotient_is_used() {
        let (inst, projection) = lifted_instance(4);
        let run = Derandomizer::new(RandomizedMis::new()).run(&inst).unwrap();
        assert_eq!(run.quotient_nodes, 3);
        assert_eq!(run.multiplicity, 4);
        // Outputs are constant on fibers — equal views, equal outputs.
        for v in 0..12 {
            for w in 0..12 {
                if projection[v] == projection[w] {
                    assert_eq!(run.outputs[v], run.outputs[w]);
                }
            }
        }
        // MIS on C12 lifted from a C3 simulation: members are one fiber (4 nodes).
        assert_eq!(run.outputs.iter().filter(|&&b| b).count(), 4);
        let plain = inst.map_labels(|_| ());
        assert!(MisProblem.is_valid_output(&plain, &run.outputs));
    }

    #[test]
    fn derandomization_commutes_with_lifting() {
        // derandomize(base) lifted along the projection == derandomize(lift):
        // the whole computation is a function of views.
        let base =
            generators::cycle(3).unwrap().with_labels(vec![((), 1u32), ((), 2), ((), 3)]).unwrap();
        let (lifted, projection) = lifted_instance(5);
        let d = Derandomizer::new(RandomizedMis::new());
        let base_run = d.run(&base).unwrap();
        let lift_run = d.run(&lifted).unwrap();
        for (v, &img) in projection.iter().enumerate() {
            assert_eq!(lift_run.outputs[v], base_run.outputs[img.index()]);
        }
    }

    #[test]
    fn rejects_non_two_hop_colored_instances() {
        let g = generators::cycle(4).unwrap();
        let inst = g.with_labels(vec![((), 1u32), ((), 2), ((), 1), ((), 2)]).unwrap();
        let err = Derandomizer::new(RandomizedMis::new()).run(&inst).unwrap_err();
        assert_eq!(err, crate::CoreError::NotTwoHopColored);
    }

    #[test]
    fn port_sensitive_algorithms_derandomize_via_emulation() {
        use anonet_graph::Port;
        use anonet_runtime::{Actions, Algorithm, Inbox};

        /// Port-sensitive probe: outputs the sorted (port, received) pairs
        /// of round 1 — a fingerprint of the (virtual) port structure.
        #[derive(Clone, Copy, Debug)]
        struct PortProbe;

        impl Algorithm for PortProbe {
            type Input = ();
            type Message = u32;
            type Output = Vec<(u32, u32)>;
            type State = ();

            fn init(&self, _: &(), _: usize) {}
            fn compose(&self, _: &(), port: Port) -> Option<u32> {
                Some(port.index() as u32)
            }
            fn step(
                &self,
                _: (),
                _round: usize,
                inbox: &Inbox<u32>,
                _bit: bool,
                actions: &mut Actions<Vec<(u32, u32)>>,
            ) {
                let mut pairs: Vec<(u32, u32)> =
                    inbox.iter().map(|(p, m)| (p.index() as u32, *m)).collect();
                pairs.sort();
                actions.output(pairs);
                actions.halt();
            }
        }

        // Base and lift: the derandomized port-sensitive outputs must
        // commute with lifting (everything is view-derived).
        let base_colors = generators::cycle(3).unwrap().with_labels(vec![1u32, 2, 3]).unwrap();
        let base_run =
            derandomize_port_sensitive(PortProbe, &base_colors, SearchStrategy::default()).unwrap();
        let l = anonet_graph::lift::cyclic_cycle_lift(3, 4).unwrap();
        let lifted_colors = l.lift_labels(base_colors.labels()).unwrap();
        let lift_run =
            derandomize_port_sensitive(PortProbe, &lifted_colors, SearchStrategy::default())
                .unwrap();
        assert_eq!(lift_run.quotient_nodes, 3);
        for (v, &img) in l.projection().iter().enumerate() {
            assert_eq!(lift_run.outputs[v], base_run.outputs[img.index()]);
        }
        // Determinism.
        let again =
            derandomize_port_sensitive(PortProbe, &lifted_colors, SearchStrategy::default())
                .unwrap();
        assert_eq!(again.outputs, lift_run.outputs);
    }

    #[test]
    fn exhaustive_strategy_matches_validity() {
        let (inst, _) = lifted_instance(2);
        let run = Derandomizer::new(RandomizedMis::new())
            .with_strategy(SearchStrategy::Exhaustive { max_total_bits: 24 })
            .run(&inst)
            .unwrap();
        let plain = inst.map_labels(|_| ());
        assert!(MisProblem.is_valid_output(&plain, &run.outputs));
        // The exhaustive strategy reports how many simulations it tried.
        assert!(run.attempts >= 1);
    }
}
