//! Error type for the derandomization machinery.

use std::error::Error;
use std::fmt;

/// Errors produced by the derandomization machinery.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The instance's color labeling is not a 2-hop coloring, so the view
    /// quotient is not simple and the construction of Theorem 1 does not
    /// apply.
    NotTwoHopColored,
    /// The exhaustive minimal-assignment search exceeded its bit budget
    /// before finding a successful simulation.
    SearchBudgetExceeded {
        /// Quotient size.
        quotient_nodes: usize,
        /// The budget on total enumerated bits (`|V_*|·t`).
        max_total_bits: usize,
    },
    /// The seeded search exhausted its attempts without a successful
    /// simulation (raise `max_attempts` or `max_rounds`).
    SeedsExhausted {
        /// How many seeds were tried.
        attempts: usize,
    },
    /// `A_*` exceeded its phase budget without every node producing an
    /// output.
    PhaseBudgetExceeded {
        /// Phases executed.
        phases: usize,
    },
    /// `A_*` produced conflicting outputs for one node across phases —
    /// would falsify the paper's Lemma 9, i.e. an implementation bug
    /// surfaced loudly.
    InconsistentOutput {
        /// The node with conflicting outputs.
        node: usize,
        /// The phase of the conflicting write.
        phase: usize,
    },
    /// A candidate enumeration was asked for parameters outside its
    /// feasible range.
    EnumerationTooLarge {
        /// Requested maximum node count.
        max_nodes: usize,
        /// Size of the label universe.
        universe: usize,
    },
    /// The problem rejected the instance (condition C3 can never hold).
    NotAnInstance,
    /// A differential oracle of [`conformance`](crate::conformance) caught
    /// two supposedly-equivalent computations disagreeing — an
    /// implementation bug in one of them, surfaced loudly.
    ConformanceMismatch {
        /// Which oracle fired (e.g. `view-graph-agreement`).
        oracle: String,
        /// Human-readable witness of the disagreement.
        detail: String,
    },
    /// An internal invariant did not hold — always an implementation bug,
    /// reported as a typed error instead of a panic so the batch engine
    /// can fail one job without tearing down the whole run.
    Internal {
        /// Which invariant broke.
        detail: String,
    },
    /// An underlying views error.
    Views(anonet_views::ViewError),
    /// An underlying runtime error.
    Runtime(anonet_runtime::RuntimeError),
    /// An underlying graph error.
    Graph(anonet_graph::GraphError),
}

impl CoreError {
    /// Builds an [`CoreError::Internal`] from any displayable witness.
    pub fn internal(detail: impl Into<String>) -> Self {
        CoreError::Internal { detail: detail.into() }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotTwoHopColored => {
                write!(f, "instance colors are not a 2-hop coloring; Theorem 1 does not apply")
            }
            CoreError::SearchBudgetExceeded { quotient_nodes, max_total_bits } => write!(
                f,
                "exhaustive assignment search on a {quotient_nodes}-node quotient exceeded {max_total_bits} total bits"
            ),
            CoreError::SeedsExhausted { attempts } => {
                write!(f, "no successful simulation within {attempts} seeded attempts")
            }
            CoreError::PhaseBudgetExceeded { phases } => {
                write!(f, "A* did not produce all outputs within {phases} phases")
            }
            CoreError::InconsistentOutput { node, phase } => write!(
                f,
                "A* produced conflicting outputs for node {node} in phase {phase} (Lemma 9 violation — bug)"
            ),
            CoreError::EnumerationTooLarge { max_nodes, universe } => write!(
                f,
                "candidate enumeration with {max_nodes} nodes over {universe} labels is infeasible"
            ),
            CoreError::NotAnInstance => {
                write!(f, "the labeled graph is not an input instance of the problem")
            }
            CoreError::ConformanceMismatch { oracle, detail } => {
                write!(f, "conformance oracle {oracle} failed: {detail}")
            }
            CoreError::Internal { detail } => {
                write!(f, "internal invariant violated (bug): {detail}")
            }
            CoreError::Views(e) => write!(f, "views error: {e}"),
            CoreError::Runtime(e) => write!(f, "runtime error: {e}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Views(e) => Some(e),
            CoreError::Runtime(e) => Some(e),
            CoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<anonet_views::ViewError> for CoreError {
    fn from(e: anonet_views::ViewError) -> Self {
        // A non-simple quotient means the colors were not a 2-hop coloring;
        // report that crisply instead of the low-level witness.
        match e {
            anonet_views::ViewError::QuotientSelfLoop { .. }
            | anonet_views::ViewError::QuotientParallelEdge { .. } => CoreError::NotTwoHopColored,
            other => CoreError::Views(other),
        }
    }
}

impl From<anonet_runtime::RuntimeError> for CoreError {
    fn from(e: anonet_runtime::RuntimeError) -> Self {
        CoreError::Runtime(e)
    }
}

impl From<anonet_graph::GraphError> for CoreError {
    fn from(e: anonet_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(CoreError::NotTwoHopColored.to_string().contains("2-hop"));
        let e = CoreError::SearchBudgetExceeded { quotient_nodes: 5, max_total_bits: 24 };
        assert!(e.to_string().contains('5') && e.to_string().contains("24"));
        assert!(CoreError::SeedsExhausted { attempts: 9 }.to_string().contains('9'));
    }

    #[test]
    fn quotient_errors_map_to_not_two_hop_colored() {
        let e: CoreError = anonet_views::ViewError::QuotientParallelEdge { node: 1 }.into();
        assert_eq!(e, CoreError::NotTwoHopColored);
        let e: CoreError = anonet_views::ViewError::NotDiscrete { nodes: 4, classes: 2 }.into();
        assert!(matches!(e, CoreError::Views(_)));
    }
}
