//! Canonical successful-assignment search (paper, Section 2.2).
//!
//! All nodes must select the **same** simulation of `A_R` on the quotient
//! `J`. The paper achieves this by totally ordering bit assignments
//! (length first, then lexicographically in the canonical node order) and
//! picking the minimal successful one. [`SearchStrategy::Exhaustive`]
//! implements exactly that; [`SearchStrategy::Seeded`] is an
//! engineering-grade alternative that replays deterministic pseudorandom
//! tapes derived from the quotient's canonical encoding — still a
//! function of the view alone, hence still agreed upon by all nodes, but
//! scaling to quotients far beyond the exhaustive search's reach. (Its
//! caveat: a Las-Vegas guarantee quantifies over random tapes, and a fixed
//! pseudorandom family could in principle miss every terminating tape; in
//! practice the first seed almost always succeeds.)

use anonet_graph::{BitString, Label, LabeledGraph, NodeId};
use anonet_runtime::{
    run, Algorithm, BitAssignment, ExecConfig, Execution, Oblivious, ObliviousAlgorithm,
    RandomSource, Status, TapeSource,
};

use crate::error::CoreError;
use crate::Result;

/// How to pick the canonical successful simulation on the quotient.
#[derive(Clone, Copy, Debug)]
pub enum SearchStrategy {
    /// The paper's rule: the minimal successful assignment under the
    /// canonical total order — iterative deepening over the uniform tape
    /// length `t`, enumerating all `2^(|V_*|·t)` assignments per level.
    /// Fails with [`CoreError::SearchBudgetExceeded`] once `|V_*|·t`
    /// exceeds `max_total_bits`.
    Exhaustive {
        /// Budget on `|V_*| · t` (enumeration is `2^this`); ~24 is sane.
        max_total_bits: usize,
    },
    /// Deterministic seeded replay: for `seed = 0, 1, …` derive per-node
    /// tapes from a hash of `(quotient encoding, seed, canonical node
    /// position, round)` and accept the first seed whose execution
    /// completes successfully within the round cap.
    Seeded {
        /// Number of seeds to try before giving up.
        max_attempts: usize,
    },
}

impl Default for SearchStrategy {
    fn default() -> Self {
        SearchStrategy::Seeded { max_attempts: 64 }
    }
}

/// A successful canonical simulation on the quotient.
#[derive(Debug)]
pub struct CanonicalSimulation<A: Algorithm> {
    /// The execution (successful: every quotient node produced an output).
    pub execution: Execution<A>,
    /// The bit assignment that induced it (reconstructed tapes for the
    /// seeded strategy).
    pub assignment: BitAssignment,
    /// How many simulations were attempted before this one succeeded.
    pub attempts: usize,
}

/// Finds the canonical successful simulation of `alg` on the quotient
/// instance `j`, using `order` as the canonical node order.
///
/// # Errors
///
/// Budget errors per strategy; runtime errors from simulations.
pub fn canonical_successful_simulation<A>(
    alg: &A,
    j: &LabeledGraph<A::Input>,
    order: &[NodeId],
    strategy: SearchStrategy,
    config: &ExecConfig,
) -> Result<CanonicalSimulation<Oblivious<A>>>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
{
    let wrapped = Oblivious(alg.clone());
    match strategy {
        SearchStrategy::Exhaustive { max_total_bits } => {
            exhaustive(&wrapped, j, order, max_total_bits, config)
        }
        SearchStrategy::Seeded { max_attempts } => seeded(&wrapped, j, order, max_attempts, config),
    }
}

fn exhaustive<A>(
    alg: &A,
    j: &LabeledGraph<A::Input>,
    order: &[NodeId],
    max_total_bits: usize,
    config: &ExecConfig,
) -> Result<CanonicalSimulation<A>>
where
    A: Algorithm,
    A::Input: Label,
{
    let n = j.node_count();
    let mut attempts = 0usize;
    for t in 1.. {
        if n * t > max_total_bits {
            return Err(CoreError::SearchBudgetExceeded { quotient_nodes: n, max_total_bits });
        }
        // All assignments of uniform length t, in canonical order.
        for assignment in BitAssignment::empty(n).extensions(t, order) {
            attempts += 1;
            let mut src = TapeSource::new(assignment.clone());
            let exec = run(alg, j, &mut src, config)?;
            if exec.is_successful() {
                return Ok(CanonicalSimulation { execution: exec, assignment, attempts });
            }
        }
    }
    unreachable!("the loop over t only exits via return")
}

/// Deterministic bit source keyed on `(key, canonical position, round)`,
/// SplitMix64-based. Never exhausts.
#[derive(Clone, Debug)]
pub struct KeyedSource {
    key: u64,
    position: Vec<u64>,
}

impl KeyedSource {
    /// Creates a source for the given key and canonical node order.
    pub fn new(key: u64, order: &[NodeId]) -> Self {
        let mut position = vec![0u64; order.len()];
        for (pos, &v) in order.iter().enumerate() {
            position[v.index()] = pos as u64;
        }
        KeyedSource { key, position }
    }
}

impl RandomSource for KeyedSource {
    fn bit(&mut self, node: NodeId, round: usize) -> Option<bool> {
        let pos = self.position.get(node.index()).copied()?;
        Some(splitmix(self.key ^ pos.wrapping_mul(0x9E3779B97F4A7C15) ^ (round as u64)) & 1 == 1)
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Hashes a quotient's canonical encoding into the base key, so the seed
/// family itself is a function of the (view-derived) quotient.
pub fn encoding_key(encoding: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64; // FNV-1a
    for &b in encoding {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn seeded<A>(
    alg: &A,
    j: &LabeledGraph<A::Input>,
    order: &[NodeId],
    max_attempts: usize,
    config: &ExecConfig,
) -> Result<CanonicalSimulation<A>>
where
    A: Algorithm,
    A::Input: Label,
{
    let base = encoding_key(&canonical_input_encoding(j, order));
    for attempt in 0..max_attempts {
        let key = splitmix(base ^ (attempt as u64).wrapping_mul(0xD1B54A32D192ED03));
        let mut src = KeyedSource::new(key, order);
        let exec = run(alg, j, &mut src, config)?;
        if exec.status() == Status::Completed && exec.is_successful() {
            // Reconstruct the tapes actually consumed (per node: one bit
            // per active round until it halted).
            let mut replay = KeyedSource::new(key, order);
            let tapes: Vec<BitString> = j
                .graph()
                .nodes()
                .map(|v| {
                    let rounds = exec.halt_rounds()[v.index()].unwrap_or(exec.rounds());
                    (1..=rounds)
                        .map(|r| replay.bit(v, r).expect("keyed source never exhausts"))
                        .collect()
                })
                .collect();
            return Ok(CanonicalSimulation {
                execution: exec,
                assignment: BitAssignment::new(tapes),
                attempts: attempt + 1,
            });
        }
    }
    Err(CoreError::SeedsExhausted { attempts: max_attempts })
}

/// Encodes the quotient instance under the canonical order (the `s(·)` of
/// the paper, applied to the input-labeled quotient).
fn canonical_input_encoding<L: Label>(j: &LabeledGraph<L>, order: &[NodeId]) -> Vec<u8> {
    anonet_graph::canonical::encode_with_order(j, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_algorithms::mis::RandomizedMis;
    use anonet_graph::generators;
    use anonet_views::{canonical_order, ViewMode};

    fn c3_instance() -> (LabeledGraph<()>, Vec<NodeId>) {
        // A prime 3-cycle as "quotient": canonical order needs distinct
        // views, so order by the colored version but simulate on unit
        // inputs (exactly what the derandomizer does).
        let colored = generators::cycle(3).unwrap().with_labels(vec![1u32, 2, 3]).unwrap();
        let order = canonical_order(&colored, ViewMode::Portless).unwrap();
        (colored.map_labels(|_| ()), order)
    }

    #[test]
    fn exhaustive_finds_minimal_mis_assignment() {
        let (j, order) = c3_instance();
        let sim = canonical_successful_simulation(
            &RandomizedMis::new(),
            &j,
            &order,
            SearchStrategy::Exhaustive { max_total_bits: 24 },
            &ExecConfig::default(),
        )
        .unwrap();
        assert!(sim.execution.is_successful());
        // The outputs form a valid MIS of C3: exactly one member.
        let outs = sim.execution.outputs_unwrapped();
        assert_eq!(outs.iter().filter(|&&b| b).count(), 1);
        // Minimality: no shorter uniform length can succeed (MIS needs at
        // least one full 3-round iteration → t >= 3).
        assert!(sim.assignment.simulation_length() >= 3);
    }

    #[test]
    fn exhaustive_is_deterministic() {
        let (j, order) = c3_instance();
        let strategy = SearchStrategy::Exhaustive { max_total_bits: 24 };
        let a = canonical_successful_simulation(
            &RandomizedMis::new(),
            &j,
            &order,
            strategy,
            &ExecConfig::default(),
        )
        .unwrap();
        let b = canonical_successful_simulation(
            &RandomizedMis::new(),
            &j,
            &order,
            strategy,
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.execution.outputs(), b.execution.outputs());
        assert_eq!(a.attempts, b.attempts);
    }

    #[test]
    fn exhaustive_respects_budget() {
        let (j, order) = c3_instance();
        let err = canonical_successful_simulation(
            &RandomizedMis::new(),
            &j,
            &order,
            SearchStrategy::Exhaustive { max_total_bits: 5 }, // < 3 nodes × 3 rounds
            &ExecConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::SearchBudgetExceeded { .. }));
    }

    #[test]
    fn seeded_succeeds_and_is_deterministic() {
        let (j, order) = c3_instance();
        let strategy = SearchStrategy::Seeded { max_attempts: 64 };
        let a = canonical_successful_simulation(
            &RandomizedMis::new(),
            &j,
            &order,
            strategy,
            &ExecConfig::default(),
        )
        .unwrap();
        let b = canonical_successful_simulation(
            &RandomizedMis::new(),
            &j,
            &order,
            strategy,
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(a.execution.outputs(), b.execution.outputs());
        assert_eq!(a.attempts, b.attempts);
        // Replayed tapes really induce the same successful execution.
        let mut src = TapeSource::new(a.assignment.clone());
        let replay =
            run(&Oblivious(RandomizedMis::new()), &j, &mut src, &ExecConfig::default()).unwrap();
        assert_eq!(replay.outputs(), a.execution.outputs());
    }

    #[test]
    fn keyed_source_is_a_pure_function() {
        let order: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        let mut a = KeyedSource::new(7, &order);
        let mut b = KeyedSource::new(7, &order);
        for r in 1..50 {
            for v in 0..4 {
                assert_eq!(a.bit(NodeId::new(v), r), b.bit(NodeId::new(v), r));
            }
        }
        // Different keys give different streams somewhere.
        let mut c = KeyedSource::new(8, &order);
        let differs = (1..200).any(|r| c.bit(NodeId::new(0), r) != b.bit(NodeId::new(0), r));
        assert!(differs);
    }
}
