//! Error type for the views machinery.

use std::error::Error;
use std::fmt;

/// Errors produced by view, refinement, and quotient computations.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ViewError {
    /// The view quotient would contain a self-loop: some node is
    /// view-equivalent to one of its own neighbors. Cannot happen on
    /// (1-hop or better) colored graphs.
    QuotientSelfLoop {
        /// A node whose class is adjacent to itself.
        node: usize,
    },
    /// The view quotient would contain parallel edges: some node has two
    /// view-equivalent neighbors. Cannot happen on 2-hop colored graphs
    /// (this is exactly the paper's Lemma 2 argument).
    QuotientParallelEdge {
        /// The node with two equivalent neighbors.
        node: usize,
    },
    /// A canonical order was requested on a graph whose refinement does
    /// not separate all nodes (only quotients / prime graphs have one).
    NotDiscrete {
        /// Number of nodes.
        nodes: usize,
        /// Number of refinement classes (< nodes).
        classes: usize,
    },
    /// An explicit view tree of this depth would exceed the size budget.
    ViewTooLarge {
        /// Requested depth.
        depth: usize,
        /// The size bound that would be exceeded.
        budget: usize,
    },
    /// Reconstructing a quotient from a folded view failed — the view is
    /// not deep enough, not a closed view, or the underlying graph is not
    /// 2-hop colored.
    Reconstruction {
        /// Human-readable description of the failure.
        reason: String,
    },
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::QuotientSelfLoop { node } => {
                write!(
                    f,
                    "view quotient is not simple: node {node} is view-equivalent to a neighbor"
                )
            }
            ViewError::QuotientParallelEdge { node } => {
                write!(
                    f,
                    "view quotient is not simple: node {node} has two view-equivalent neighbors (graph is not 2-hop colored)"
                )
            }
            ViewError::NotDiscrete { nodes, classes } => {
                write!(
                    f,
                    "refinement separates only {classes} of {nodes} nodes; a canonical node order requires distinct views"
                )
            }
            ViewError::ViewTooLarge { depth, budget } => {
                write!(f, "explicit view tree of depth {depth} exceeds the size budget of {budget} vertices")
            }
            ViewError::Reconstruction { reason } => {
                write!(f, "quotient reconstruction from folded view failed: {reason}")
            }
        }
    }
}

impl Error for ViewError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ViewError::QuotientSelfLoop { node: 2 }.to_string().contains("node 2"));
        assert!(ViewError::QuotientParallelEdge { node: 1 }.to_string().contains("2-hop"));
        assert!(ViewError::NotDiscrete { nodes: 6, classes: 3 }.to_string().contains('3'));
        assert!(ViewError::ViewTooLarge { depth: 30, budget: 100 }.to_string().contains("30"));
    }
}
