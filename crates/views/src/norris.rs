//! Empirical companions to Norris' theorem (paper, Theorem 3):
//! depth-`n` views determine depth-∞ views.

use anonet_graph::{Label, LabeledGraph};

use crate::refinement::{BoundedRefinement, ViewMode};

/// The outcome of checking Norris' bound on one graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NorrisReport {
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Number of distinct depth-∞ views (`|V_∞|`).
    pub classes: usize,
    /// Rounds of refinement until the view partition stabilized — the
    /// smallest `d` such that depth-`(d+1)` views determine all views.
    pub stabilization_depth: usize,
    /// Norris' bound in refinement form: stabilization within `n - 1`
    /// rounds (so `L_n` determines `L_∞`).
    pub bound: usize,
}

impl NorrisReport {
    /// `true` iff the bound holds (it always does; the experiments verify
    /// this and measure the slack).
    pub fn holds(&self) -> bool {
        self.stabilization_depth <= self.bound
    }

    /// How far below the bound the graph stabilized.
    pub fn slack(&self) -> usize {
        self.bound.saturating_sub(self.stabilization_depth)
    }
}

/// Runs refinement and reports stabilization depth against Norris' bound.
/// Uses the bounded engine — only counts and depth are consumed.
pub fn norris_report<L: Label>(g: &LabeledGraph<L>, mode: ViewMode) -> NorrisReport {
    let r = BoundedRefinement::compute(g, mode);
    NorrisReport {
        nodes: g.node_count(),
        classes: r.class_count(),
        stabilization_depth: r.stabilization_depth(),
        bound: g.node_count().saturating_sub(1),
    }
}

/// The smallest depth `d` such that the depth-`d` view partition already
/// equals the stable partition. (`stabilization_depth + 1` in view terms:
/// refinement round `k` corresponds to views of depth `k + 1`.)
pub fn sufficient_view_depth<L: Label>(g: &LabeledGraph<L>, mode: ViewMode) -> usize {
    BoundedRefinement::compute(g, mode).stabilization_depth() + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::generators;

    #[test]
    fn bound_holds_on_standard_families() {
        let graphs: Vec<LabeledGraph<u32>> = vec![
            generators::path(10).unwrap().with_uniform_label(0u32),
            generators::cycle(9).unwrap().with_uniform_label(0u32),
            generators::petersen().with_uniform_label(0u32),
            generators::hypercube(3).unwrap().with_uniform_label(0u32),
            generators::cycle(6).unwrap().with_labels(vec![1, 2, 3, 1, 2, 3]).unwrap(),
        ];
        for g in graphs {
            for mode in [ViewMode::Portless, ViewMode::PortAware] {
                let report = norris_report(&g, mode);
                assert!(report.holds(), "Norris bound violated: {report:?}");
            }
        }
    }

    #[test]
    fn path_is_the_slow_case() {
        // Uniform paths are the classic near-tight case: distinguishing
        // the middle of P_n takes about n/2 rounds.
        let g = generators::path(12).unwrap().with_uniform_label(0u32);
        let report = norris_report(&g, ViewMode::Portless);
        assert!(report.stabilization_depth >= 5, "got {report:?}");
        assert!(report.holds());
    }

    #[test]
    fn colored_graphs_stabilize_fast() {
        let g = generators::cycle(12)
            .unwrap()
            .with_labels((0..12).map(|i| (i % 3) as u32).collect())
            .unwrap();
        let report = norris_report(&g, ViewMode::Portless);
        // Coloring already separates everything separable; no rounds of
        // refinement can split further.
        assert_eq!(report.classes, 3);
        assert_eq!(report.stabilization_depth, 0);
        assert_eq!(report.slack(), 11);
    }

    #[test]
    fn sufficient_view_depth_matches() {
        let g = generators::path(8).unwrap().with_uniform_label(0u32);
        let d = sufficient_view_depth(&g, ViewMode::Portless);
        let r = crate::refinement::Refinement::compute(&g, ViewMode::Portless);
        assert_eq!(d, r.stabilization_depth() + 1);
        assert!(d <= 8);
    }
}
