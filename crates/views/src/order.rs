//! The canonical total order on nodes with distinct views
//! (paper, Section 2.1) and the `s(G_*)` encoding (Section 3.1).

use anonet_graph::{canonical, Label, LabeledGraph, NodeId};

use crate::error::ViewError;
use crate::refinement::{Refinement, ViewMode};
use crate::Result;

/// Computes the canonical total order on the nodes of a graph whose views
/// are all distinct (e.g. a view quotient / a prime 2-hop colored graph).
///
/// The paper orders `V_∞` by comparing canonical representations of the
/// depth-∞ view trees level by level. We use the equivalent
/// isomorphism-invariant order given by the *refinement history*: node `u`
/// precedes node `v` if the vector `(class₀(u), class₁(u), …)` precedes
/// `(class₀(v), class₁(v), …)` lexicographically, where class ids at every
/// level are canonically numbered by sorted refinement keys. Because class
/// ids are derived from views alone, every node of an anonymous network
/// computes the **same** order — the property all of Section 2.2's
/// machinery needs. (Any fixed view-derived total order satisfies the
/// paper's proofs; the literal tree order and this one agree on what
/// matters: both are invariant and total.)
///
/// # Errors
///
/// Returns [`ViewError::NotDiscrete`] if two nodes share a view — only
/// prime graphs have a canonical node order.
pub fn canonical_order<L: Label>(g: &LabeledGraph<L>, mode: ViewMode) -> Result<Vec<NodeId>> {
    let r = Refinement::compute(g, mode);
    if !r.is_discrete() {
        return Err(ViewError::NotDiscrete { nodes: g.node_count(), classes: r.class_count() });
    }
    let mut nodes: Vec<NodeId> = g.graph().nodes().collect();
    nodes.sort_by_key(|&v| r.history_key(v));
    Ok(nodes)
}

/// The canonical bitstring encoding `s(G)` of a prime labeled graph:
/// [`canonical_order`] followed by
/// [`encode_with_order`](anonet_graph::canonical::encode_with_order).
///
/// `Update-Graph` compares finite view graphs by `(|V_*|, s(G_*))`; this
/// function provides the `s(·)` part.
///
/// # Errors
///
/// Returns [`ViewError::NotDiscrete`] if the graph has repeated views.
pub fn canonical_encoding<L: Label>(g: &LabeledGraph<L>, mode: ViewMode) -> Result<Vec<u8>> {
    let order = canonical_order(g, mode)?;
    Ok(canonical::encode_with_order(g, &order))
}

/// Compares two prime labeled graphs in the `Update-Graph` total order:
/// first by node count, then by canonical encoding.
///
/// # Errors
///
/// Returns [`ViewError::NotDiscrete`] if either graph has repeated views.
pub fn update_graph_cmp<L: Label>(
    a: &LabeledGraph<L>,
    b: &LabeledGraph<L>,
    mode: ViewMode,
) -> Result<std::cmp::Ordering> {
    let by_size = a.node_count().cmp(&b.node_count());
    if by_size != std::cmp::Ordering::Equal {
        return Ok(by_size);
    }
    Ok(canonical_encoding(a, mode)?.cmp(&canonical_encoding(b, mode)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::generators;

    fn colored_cycle(n: usize) -> LabeledGraph<u32> {
        let labels: Vec<u32> = (0..n).map(|i| (i % 3) as u32 + 1).collect();
        generators::cycle(n).unwrap().with_labels(labels).unwrap()
    }

    #[test]
    fn order_requires_distinct_views() {
        let g = colored_cycle(6); // views repeat with multiplicity 2
        assert!(matches!(
            canonical_order(&g, ViewMode::Portless),
            Err(ViewError::NotDiscrete { nodes: 6, classes: 3 })
        ));
    }

    #[test]
    fn order_is_total_on_prime_graphs() {
        let g = colored_cycle(3);
        let order = canonical_order(&g, ViewMode::PortAware).unwrap();
        assert_eq!(order.len(), 3);
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn order_is_isomorphism_invariant() {
        // Rotating the labels of C3 renames nodes; the canonical order
        // must follow the renaming, i.e. the sequence of labels along the
        // canonical order must be identical for both presentations.
        let a = generators::cycle(3).unwrap().with_labels(vec![1u32, 2, 3]).unwrap();
        let b = generators::cycle(3).unwrap().with_labels(vec![2u32, 3, 1]).unwrap();
        let oa = canonical_order(&a, ViewMode::PortAware).unwrap();
        let ob = canonical_order(&b, ViewMode::PortAware).unwrap();
        let la: Vec<u32> = oa.iter().map(|&v| *a.label(v)).collect();
        let lb: Vec<u32> = ob.iter().map(|&v| *b.label(v)).collect();
        assert_eq!(la, lb);
    }

    #[test]
    fn canonical_encoding_is_presentation_independent() {
        let a = generators::cycle(3).unwrap().with_labels(vec![1u32, 2, 3]).unwrap();
        let b = generators::cycle(3).unwrap().with_labels(vec![3u32, 1, 2]).unwrap();
        assert_eq!(
            canonical_encoding(&a, ViewMode::PortAware).unwrap(),
            canonical_encoding(&b, ViewMode::PortAware).unwrap()
        );
    }

    #[test]
    fn canonical_encoding_separates_different_graphs() {
        let a = generators::cycle(3).unwrap().with_labels(vec![1u32, 2, 3]).unwrap();
        let b = generators::path(3).unwrap().with_labels(vec![1u32, 2, 3]).unwrap();
        assert_ne!(
            canonical_encoding(&a, ViewMode::PortAware).unwrap(),
            canonical_encoding(&b, ViewMode::PortAware).unwrap()
        );
    }

    #[test]
    fn update_graph_cmp_orders_by_size_first() {
        let small = colored_cycle(3);
        let big = generators::cycle(4).unwrap().with_labels(vec![1u32, 2, 3, 4]).unwrap();
        assert_eq!(
            update_graph_cmp(&small, &big, ViewMode::PortAware).unwrap(),
            std::cmp::Ordering::Less
        );
        assert_eq!(
            update_graph_cmp(&small, &small, ViewMode::PortAware).unwrap(),
            std::cmp::Ordering::Equal
        );
    }
}
