//! # anonet-views
//!
//! Local views `L_d(v)`, view-equivalence via color refinement, the finite
//! view graph `G_*` (the paper's quotient construction), the canonical
//! total order on `V_*`, and Norris-depth computations.
//!
//! ## Views and refinement
//!
//! The paper's depth-`d` local view `L_d(v)` (Section 1.1, Figure 1) is a
//! rooted tree capturing everything a deterministic algorithm at `v` could
//! learn in `d` rounds. Explicit view trees grow like `Δ^d`, so this crate
//! provides them ([`ViewTree`]) only for small depths — Figure 1, tests,
//! and exact cross-checks — and uses **color refinement** everywhere else:
//! the partition of nodes by depth-`d` view equality is exactly the
//! partition computed by `d` rounds of refinement, and refinement is
//! linear-time per round.
//!
//! ## Port decoration
//!
//! The paper's views carry node labels only. Its model, however, is
//! port-numbered, and lifting *arbitrary* (port-sensitive) algorithms
//! between a graph and its quotient requires the quotient map to preserve
//! ports. We therefore support both equivalences ([`ViewMode`]):
//!
//! * [`ViewMode::Portless`] (default) — the paper's literal notion and
//!   what the derandomization machinery uses, paired with *port-oblivious*
//!   algorithms. Port-oblivious algorithms lose no power on 2-hop colored
//!   graphs: the sender's color identifies the edge, as the paper's
//!   Section 1.3 remark notes.
//! * [`ViewMode::PortAware`] — views additionally record, per port, the
//!   port through which each neighbor sees the node. This equivalence is
//!   strictly finer (adversarial port numberings break symmetry that
//!   labels cannot see); the quotient of a 2-hop colored graph under it is
//!   still simple and its projection is a **port-preserving** factorizing
//!   map, along which executions of arbitrary port-sensitive algorithms
//!   lift. Used by the experiments that isolate the role of ports.
//!
//! ## Example
//!
//! ```
//! use anonet_graph::generators;
//! use anonet_views::{quotient, ViewMode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Figure 2: colored C6 has quotient C3.
//! let c6 = generators::cycle(6)?.with_labels(vec![1u32, 2, 3, 1, 2, 3])?;
//! let q = quotient(&c6, ViewMode::Portless)?;
//! assert_eq!(q.graph().node_count(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
pub mod cover;
mod error;
mod folded;
mod interner;
pub mod norris;
mod order;
mod quotient;
mod refinement;
mod view_tree;

pub use arena::{canonical_view_encoding, thread_arena_stats, ArenaStats, ViewArena, ViewNode};
pub use error::ViewError;
pub use folded::FoldedView;
pub use interner::{Interner, Sym};
pub use order::{canonical_encoding, canonical_order, update_graph_cmp};
pub use quotient::{quotient, ViewQuotient};
pub use refinement::{
    assign_dense_classes, initial_label_classes, round_keys, BoundedRefinement, EngineStats,
    Refinement, RefinementEngine, RoundKey, ViewMode,
};
pub use view_tree::ViewTree;

/// Convenient alias for results with [`ViewError`].
pub type Result<T> = std::result::Result<T, ViewError>;
