//! Folded views: polynomial-size exact representations of local views.
//!
//! An explicit depth-`d` view tree has `Θ(Δ^d)` vertices, but only few
//! *distinct* subtrees: every depth-`k` subtree of `L_d(v)` is `L_k(u)`
//! for some node `u`, so there are at most `n` distinct subtrees per
//! level. Sharing them turns the tree into a DAG of `O(n·d)` entries —
//! the *folded view* (Tani's classic compression of Yamashita–Kameda
//! views). Folded views make exchanging **exact** views affordable:
//! the message-level derandomizer in `anonet-core` ships them instead of
//! exponential trees.
//!
//! # Canonical form
//!
//! A [`FoldedView`] stores one level per depth; each level is the sorted,
//! deduplicated list of `(mark, sorted child indices into the previous
//! level)` entries. Because level 0 is sorted by marks and each level's
//! entries reference canonical indices of the previous level, the whole
//! structure is a **pure function of the abstract view**: two folded
//! views are equal (plain `==`) iff the underlying view trees are equal.
//! No hashing is involved, so equality is exact, not probabilistic.

use anonet_graph::{Label, LabeledGraph, NodeId};

use crate::error::ViewError;
use crate::view_tree::ViewTree;
use crate::Result;

/// One shared subtree: its root mark and its children (indices into the
/// previous level), sorted ascending, duplicates kept (a node may have
/// several neighbors with identical views).
type Entry<L> = (L, Vec<u32>);

/// A folded (DAG-compressed) depth-`d` local view.
///
/// # Example
///
/// ```
/// use anonet_graph::{generators, NodeId};
/// use anonet_views::FoldedView;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c6 = generators::cycle(6)?.with_labels(vec![1u32, 2, 3, 1, 2, 3])?;
/// // Depth 12 explicitly would be 4095 vertices; folded it stays tiny.
/// let folded = FoldedView::build(&c6, NodeId::new(0), 12)?;
/// assert_eq!(folded.depth(), 12);
/// assert!(folded.entry_count() <= 3 * 12); // ≤ |V_∞| entries per level
/// // Nodes 0 and 3 share all views (C6 is a product of C3):
/// assert_eq!(folded, FoldedView::build(&c6, NodeId::new(3), 12)?);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FoldedView<L> {
    /// `levels[k]` holds the distinct depth-`(k+1)` subtrees occurring in
    /// the view, canonically sorted.
    levels: Vec<Vec<Entry<L>>>,
    /// Index of the full view in the last level.
    root: u32,
}

impl<L: Label> FoldedView<L> {
    /// The depth-1 view: a single marked vertex.
    pub fn leaf(mark: L) -> Self {
        FoldedView { levels: vec![vec![(mark, Vec::new())]], root: 0 }
    }

    /// Builds the folded depth-`d` view of `v` in `g` directly (without
    /// materializing the exponential tree): level `k` entries are the
    /// distinct depth-`(k+1)` views of the nodes reachable from `v` by a
    /// walk of length exactly `d - 1 - k` (tree level `j` of `L_d(v)`
    /// corresponds to length-`j` walks).
    ///
    /// # Errors
    ///
    /// Returns [`ViewError::ViewTooLarge`] for `d = 0`.
    pub fn build(g: &LabeledGraph<L>, v: NodeId, d: usize) -> Result<Self> {
        if d == 0 {
            return Err(ViewError::ViewTooLarge { depth: 0, budget: 0 });
        }
        // view_of[k][u] = index into levels[k] of L_{k+1}(u), for all u
        // (we compute for every node; restriction to the relevant ball
        // happens when collecting reachable entries below).
        let n = g.node_count();
        let mut levels: Vec<Vec<Entry<L>>> = Vec::with_capacity(d);
        let mut view_of: Vec<Vec<u32>> = Vec::with_capacity(d);

        // Level 0: marks.
        let keys0: Vec<Entry<L>> =
            g.graph().nodes().map(|u| (g.label(u).clone(), Vec::new())).collect();
        let (entries0, idx0) = canonicalize_level(keys0);
        levels.push(entries0);
        view_of.push(idx0);

        for k in 1..d {
            let prev = &view_of[k - 1];
            let keys: Vec<Entry<L>> = g
                .graph()
                .nodes()
                .map(|u| {
                    let mut children: Vec<u32> =
                        g.graph().neighbors(u).iter().map(|w| prev[w.index()]).collect();
                    children.sort_unstable();
                    (g.label(u).clone(), children)
                })
                .collect();
            let (entries, idx) = canonicalize_level(keys);
            levels.push(entries);
            view_of.push(idx);
        }

        // Restrict each level to the entries actually occurring in v's
        // view and re-canonicalize indices: level k keeps the views of
        // nodes reachable by a walk of length exactly d - 1 - k (tree
        // level j of L_d corresponds to length-j walks).
        let mut walk_sets: Vec<Vec<bool>> = Vec::with_capacity(d);
        let mut current = vec![false; n];
        current[v.index()] = true;
        walk_sets.push(current.clone());
        for _ in 1..d {
            let mut next = vec![false; n];
            for u in g.graph().nodes() {
                if current[u.index()] {
                    for &w in g.graph().neighbors(u) {
                        next[w.index()] = true;
                    }
                }
            }
            walk_sets.push(next.clone());
            current = next;
        }
        let mut restricted: Vec<Vec<Entry<L>>> = Vec::with_capacity(d);
        let mut remap: Vec<Vec<Option<u32>>> = Vec::with_capacity(d);
        for k in 0..d {
            let walk_len = d - 1 - k;
            let mut keep: Vec<u32> =
                (0..n).filter(|&u| walk_sets[walk_len][u]).map(|u| view_of[k][u]).collect();
            keep.sort_unstable();
            keep.dedup();
            let mut map = vec![None; levels[k].len()];
            let mut entries = Vec::with_capacity(keep.len());
            for (new_idx, &old_idx) in keep.iter().enumerate() {
                map[old_idx as usize] = Some(new_idx as u32);
                let (mark, children) = levels[k][old_idx as usize].clone();
                let children = if k == 0 {
                    children
                } else {
                    children
                        .iter()
                        .map(|&c| {
                            remap[k - 1][c as usize]
                                .expect("children of kept entries are kept (smaller radius +1)")
                        })
                        .collect()
                };
                entries.push((mark, children));
            }
            // Entries were generated in ascending old-index order, which is
            // ascending key order; after child remapping (monotone) they
            // remain sorted.
            restricted.push(entries);
            remap.push(map);
        }
        let root = remap[d - 1][view_of[d - 1][v.index()] as usize]
            .expect("v is within distance 0 of itself");
        Ok(FoldedView { levels: restricted, root })
    }

    /// Folds an explicit view tree (children order irrelevant).
    pub fn from_view_tree(tree: &ViewTree<L>) -> Self {
        let d = tree.depth();
        let mut levels: Vec<Vec<Entry<L>>> = vec![Vec::new(); d];
        let root = fold_rec(tree, d, &mut levels);
        // Levels were built with dedup-on-insert but arbitrary order;
        // re-canonicalize bottom-up.
        let mut canonical: Vec<Vec<Entry<L>>> = Vec::with_capacity(d);
        let mut remaps: Vec<Vec<u32>> = Vec::with_capacity(d);
        for (k, level) in levels.into_iter().enumerate() {
            let level: Vec<Entry<L>> = level
                .into_iter()
                .map(|(mark, children)| {
                    let mut children: Vec<u32> = if k == 0 {
                        children
                    } else {
                        children.iter().map(|&c| remaps[k - 1][c as usize]).collect()
                    };
                    children.sort_unstable();
                    (mark, children)
                })
                .collect();
            let (entries, idx) = canonicalize_level(level);
            canonical.push(entries);
            remaps.push(idx);
        }
        let root = remaps[d - 1][root as usize];
        FoldedView { levels: canonical, root }
    }

    /// The extension rule of view gathering: `L_{d+1}(v)` from the
    /// neighbors' `L_d` views.
    ///
    /// # Panics
    ///
    /// Panics if the neighbor views do not all have equal depth (lockstep
    /// gathering guarantees it).
    pub fn extend(mark: L, neighbors: &[&FoldedView<L>]) -> Self {
        if neighbors.is_empty() {
            // Isolated node (single-node graph): the view stays a chain of
            // single vertices; represent depth d+1 with one entry per level.
            return FoldedView::leaf(mark);
        }
        let d = neighbors[0].depth();
        assert!(neighbors.iter().all(|f| f.depth() == d), "neighbor views must have equal depth");
        // Merge levels 0..d across neighbors.
        let mut merged: Vec<Vec<Entry<L>>> = Vec::with_capacity(d + 1);
        // per neighbor, per level: remap old index -> merged index
        let mut remaps: Vec<Vec<Vec<u32>>> = vec![Vec::new(); neighbors.len()];
        for k in 0..d {
            let mut keys: Vec<Entry<L>> = Vec::new();
            for (ni, f) in neighbors.iter().enumerate() {
                for (mark, children) in &f.levels[k] {
                    let children: Vec<u32> = if k == 0 {
                        children.clone()
                    } else {
                        let mut cs: Vec<u32> =
                            children.iter().map(|&c| remaps[ni][k - 1][c as usize]).collect();
                        cs.sort_unstable();
                        cs
                    };
                    keys.push((mark.clone(), children));
                }
            }
            let (entries, _) = canonicalize_level(keys.clone());
            // Build per-neighbor remaps by re-resolving each entry key.
            for (ni, f) in neighbors.iter().enumerate() {
                let mut map = Vec::with_capacity(f.levels[k].len());
                for (mark, children) in &f.levels[k] {
                    let children: Vec<u32> = if k == 0 {
                        children.clone()
                    } else {
                        let mut cs: Vec<u32> =
                            children.iter().map(|&c| remaps[ni][k - 1][c as usize]).collect();
                        cs.sort_unstable();
                        cs
                    };
                    let key = (mark.clone(), children);
                    let idx = entries.binary_search(&key).expect("key was inserted");
                    map.push(idx as u32);
                }
                remaps[ni].push(map);
            }
            merged.push(entries);
        }
        // New root level: children = the neighbors' roots, remapped.
        let mut children: Vec<u32> = neighbors
            .iter()
            .enumerate()
            .map(|(ni, f)| remaps[ni][d - 1][f.root as usize])
            .collect();
        children.sort_unstable();
        merged.push(vec![(mark, children)]);
        FoldedView { levels: merged, root: 0 }
    }

    /// View depth `d` (number of levels).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total number of DAG entries across levels (the compressed size).
    pub fn entry_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Number of distinct subtrees at `level` (0-based; depth `level+1`).
    pub fn level_width(&self, level: usize) -> Option<usize> {
        self.levels.get(level).map(Vec::len)
    }

    /// The entries of one level.
    pub fn level(&self, level: usize) -> Option<&[(L, Vec<u32>)]> {
        self.levels.get(level).map(Vec::as_slice)
    }

    /// Index of the root entry in the last level.
    pub fn root_index(&self) -> u32 {
        self.root
    }

    /// Unfolds into the explicit view tree (exponential — tests only).
    pub fn unfold(&self) -> ViewTree<L> {
        self.unfold_entry(self.depth() - 1, self.root as usize)
    }

    fn unfold_entry(&self, level: usize, idx: usize) -> ViewTree<L> {
        let (mark, children) = &self.levels[level][idx];
        let kids: Vec<ViewTree<L>> =
            children.iter().map(|&c| self.unfold_entry(level - 1, c as usize)).collect();
        ViewTree::from_parts(mark.clone(), kids)
    }

    /// The number of vertices the *unfolded* tree would have.
    pub fn unfolded_size(&self) -> u128 {
        // sizes[k][i] = vertex count of entry i at level k.
        let mut sizes: Vec<Vec<u128>> = Vec::with_capacity(self.depth());
        for (k, level) in self.levels.iter().enumerate() {
            let level_sizes: Vec<u128> = level
                .iter()
                .map(|(_, children)| {
                    1 + children.iter().map(|&c| sizes[k - 1][c as usize]).sum::<u128>()
                })
                .collect::<Vec<_>>();
            if k == 0 {
                sizes.push(level.iter().map(|_| 1).collect());
            } else {
                sizes.push(level_sizes);
            }
        }
        sizes[self.depth() - 1][self.root as usize]
    }

    /// The truncation maps `t_k : level k → level k-1` sending each
    /// depth-`(k+1)` subtree to its depth-`k` truncation — the paper's
    /// `f_n` depth-truncating function, per level. `maps[k-1][i]` is the
    /// level-`(k-1)` index of the truncation of level-`k` entry `i`.
    ///
    /// # Errors
    ///
    /// A truncation may be absent from the previous level in *open* views
    /// of bipartite graphs (walk parity — level `k-1` holds views of the
    /// opposite bipartition side). Closed views ([`FoldedView::build_closed`])
    /// never fail here.
    pub fn truncation_maps(&self) -> Result<Vec<Vec<u32>>> {
        let d = self.depth();
        let mut maps: Vec<Vec<u32>> = Vec::with_capacity(d.saturating_sub(1));
        for k in 1..d {
            let mut map: Vec<u32> = Vec::with_capacity(self.levels[k].len());
            for (mark, children) in &self.levels[k] {
                let truncated_children: Vec<u32> = if k == 1 {
                    Vec::new()
                } else {
                    let mut cs: Vec<u32> =
                        children.iter().map(|&c| maps[k - 2][c as usize]).collect();
                    cs.sort_unstable();
                    cs
                };
                let key = (mark.clone(), truncated_children);
                let idx = self.levels[k - 1].binary_search(&key).map_err(|_| {
                    ViewError::Reconstruction {
                        reason: format!(
                            "truncation of a level-{k} entry is absent from level {} (open view of a bipartite graph?)",
                            k - 1
                        ),
                    }
                })?;
                map.push(idx as u32);
            }
            maps.push(map);
        }
        Ok(maps)
    }

    /// Builds the **closed** folded depth-`d` view: the view of `v` in the
    /// graph with a self-loop added at every node. Closed views carry the
    /// same information as open views (the self entry in each child
    /// multiset is redundant with the root mark), but their levels cover
    /// *balls* instead of fixed-parity walk sets — which makes truncation
    /// total and quotient reconstruction ([`FoldedView::quotient_at_level`])
    /// possible. This is what the message-level derandomizer gathers.
    ///
    /// # Errors
    ///
    /// Returns [`ViewError::ViewTooLarge`] for `d = 0`.
    pub fn build_closed(g: &LabeledGraph<L>, v: NodeId, d: usize) -> Result<Self> {
        if d == 0 {
            return Err(ViewError::ViewTooLarge { depth: 0, budget: 0 });
        }
        let mut view = FoldedView::leaf(g.label(v).clone());
        // Iteratively extend: requires all nodes' views per step.
        let mut all: Vec<FoldedView<L>> =
            g.graph().nodes().map(|u| FoldedView::leaf(g.label(u).clone())).collect();
        for _ in 1..d {
            let next: Vec<FoldedView<L>> = g
                .graph()
                .nodes()
                .map(|u| {
                    let mut children: Vec<&FoldedView<L>> =
                        g.graph().neighbors(u).iter().map(|w| &all[w.index()]).collect();
                    children.push(&all[u.index()]); // the self-loop
                    FoldedView::extend(g.label(u).clone(), &children)
                })
                .collect();
            all = next;
        }
        std::mem::swap(&mut view, &mut all[v.index()]);
        Ok(view)
    }

    /// Reconstructs the view quotient `G_*` from a **closed** folded view,
    /// reading classes off `level` (which must be stable and deep enough
    /// to cover the graph — `level = N` within a depth-`2N+2` view, for
    /// `N ≥ n`, always qualifies). Returns the quotient as a labeled graph
    /// (adjacency sorted ascending, Portless-style) together with the
    /// index of the *own* class (the root's class).
    ///
    /// # Errors
    ///
    /// [`ViewError::Reconstruction`] when the level is not stable, the
    /// view is not closed, or the labels are not a coloring;
    /// [`ViewError::QuotientSelfLoop`] / parallel-edge conditions surface
    /// as reconstruction errors with witnesses in the message.
    pub fn quotient_at_level(&self, level: usize) -> Result<(LabeledGraph<L>, NodeId)> {
        let d = self.depth();
        if level == 0 || level + 1 >= d {
            return Err(ViewError::Reconstruction {
                reason: format!("level {level} out of range for a depth-{d} view"),
            });
        }
        let maps = self.truncation_maps()?;
        let width = self.levels[level].len();
        if self.levels[level - 1].len() != width {
            return Err(ViewError::Reconstruction {
                reason: format!(
                    "level widths {} vs {width} differ: refinement not yet stable at this depth",
                    self.levels[level - 1].len()
                ),
            });
        }
        // t_level must be a bijection; widths are equal, so injectivity
        // suffices. Build the inverse.
        let t = &maps[level - 1];
        let mut inverse: Vec<Option<u32>> = vec![None; width];
        for (i, &img) in t.iter().enumerate() {
            if inverse[img as usize].is_some() {
                return Err(ViewError::Reconstruction {
                    reason: "truncation is not injective at this level".into(),
                });
            }
            inverse[img as usize] = Some(i as u32);
        }

        // Adjacency: children minus one self occurrence, mapped through
        // the inverse truncation.
        let mut adj: Vec<Vec<NodeId>> = Vec::with_capacity(width);
        for (i, (_, children)) in self.levels[level].iter().enumerate() {
            let self_trunc = t[i];
            let mut removed_self = false;
            let mut nbrs: Vec<NodeId> = Vec::with_capacity(children.len().saturating_sub(1));
            for &c in children {
                if !removed_self && c == self_trunc {
                    removed_self = true; // the self-loop entry
                    continue;
                }
                let mapped = inverse[c as usize].ok_or_else(|| ViewError::Reconstruction {
                    reason: "a child class has no representative at this level".into(),
                })?;
                if mapped as usize == i {
                    return Err(ViewError::Reconstruction {
                        reason: format!(
                            "class {i} would be self-adjacent (labels are not a coloring)"
                        ),
                    });
                }
                nbrs.push(NodeId::new(mapped as usize));
            }
            if !removed_self {
                return Err(ViewError::Reconstruction {
                    reason: "no self entry among children: not a closed view".into(),
                });
            }
            nbrs.sort_unstable();
            if nbrs.windows(2).any(|w| w[0] == w[1]) {
                return Err(ViewError::Reconstruction {
                    reason: format!("class {i} has duplicate neighbor classes (not 2-hop colored)"),
                });
            }
            adj.push(nbrs);
        }
        let graph = anonet_graph::Graph::from_adjacency(adj).map_err(|e| {
            ViewError::Reconstruction { reason: format!("quotient adjacency invalid: {e}") }
        })?;
        let labels: Vec<L> = self.levels[level].iter().map(|(mark, _)| mark.clone()).collect();
        let labeled =
            LabeledGraph::new(graph, labels).expect("one label per class by construction");

        // The own class: truncate the root down to `level`.
        let mut idx = self.root;
        for j in (level + 1..d).rev() {
            idx = maps[j - 1][idx as usize];
        }
        Ok((labeled, NodeId::new(idx as usize)))
    }
}

/// Sorts and dedups entries, returning `(entries, index_of_original)`.
fn canonicalize_level<L: Label>(keys: Vec<Entry<L>>) -> (Vec<Entry<L>>, Vec<u32>) {
    let mut entries = keys.clone();
    entries.sort();
    entries.dedup();
    let idx =
        keys.iter().map(|k| entries.binary_search(k).expect("key is present") as u32).collect();
    (entries, idx)
}

fn fold_rec<L: Label>(tree: &ViewTree<L>, total_depth: usize, levels: &mut [Vec<Entry<L>>]) -> u32 {
    // A vertex at remaining-depth r lives at level r-1. View trees are
    // "complete" (all leaves at the bottom), so remaining depth is the
    // subtree's own depth.
    let level = tree.depth() - 1;
    debug_assert!(level < total_depth);
    let mut children: Vec<u32> =
        tree.children().iter().map(|c| fold_rec(c, total_depth, levels)).collect();
    children.sort_unstable();
    let key = (tree.mark().clone(), children);
    if let Some(pos) = levels[level].iter().position(|e| *e == key) {
        pos as u32
    } else {
        levels[level].push(key);
        (levels[level].len() - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::generators;

    fn fig1_c6() -> LabeledGraph<u32> {
        generators::cycle(6).unwrap().with_labels(vec![1, 2, 3, 1, 2, 3]).unwrap()
    }

    #[test]
    fn folded_equals_folded_explicit_tree() {
        for g in [
            fig1_c6(),
            generators::petersen().with_degree_labels(),
            generators::path(5).unwrap().with_uniform_label(7u32),
        ] {
            for d in 1..=5 {
                for v in g.graph().nodes() {
                    let direct = FoldedView::build(&g, v, d).unwrap();
                    let tree = ViewTree::build(&g, v, d).unwrap();
                    let via_tree = FoldedView::from_view_tree(&tree);
                    assert_eq!(direct, via_tree, "node {v}, depth {d}");
                }
            }
        }
    }

    #[test]
    fn unfold_recovers_the_canonical_tree() {
        let g = fig1_c6();
        for d in 1..=6 {
            let v = NodeId::new(1);
            let folded = FoldedView::build(&g, v, d).unwrap();
            let unfolded = folded.unfold();
            let explicit = ViewTree::build(&g, v, d).unwrap().canonicalize();
            assert!(unfolded.view_eq(&explicit), "depth {d}");
            assert_eq!(folded.unfolded_size(), unfolded.size() as u128);
        }
    }

    #[test]
    fn folded_equality_matches_view_equality() {
        let g = fig1_c6();
        let d = 10;
        let views: Vec<FoldedView<u32>> =
            g.graph().nodes().map(|v| FoldedView::build(&g, v, d).unwrap()).collect();
        for u in 0..6 {
            for v in 0..6 {
                let expect = u % 3 == v % 3; // fibers of the C3 product
                assert_eq!(views[u] == views[v], expect, "{u} vs {v}");
            }
        }
    }

    #[test]
    fn folded_size_is_polynomial_where_trees_explode() {
        let g = generators::petersen().with_uniform_label(0u32);
        let folded = FoldedView::build(&g, NodeId::new(0), 20).unwrap();
        // Explicit tree would have ~3^20 ≈ 3.5e9 vertices.
        assert!(folded.unfolded_size() > 1_000_000_000);
        // The folded DAG stays tiny (≤ n entries per level).
        assert!(folded.entry_count() <= 10 * 20);
    }

    #[test]
    fn extend_matches_direct_build() {
        // Gathering semantics: extend(mark, neighbor depth-d views) must
        // equal the direct depth-(d+1) build.
        let g = fig1_c6();
        for d in 1..=6 {
            for v in g.graph().nodes() {
                let neighbor_views: Vec<FoldedView<u32>> = g
                    .graph()
                    .neighbors(v)
                    .iter()
                    .map(|&u| FoldedView::build(&g, u, d).unwrap())
                    .collect();
                let refs: Vec<&FoldedView<u32>> = neighbor_views.iter().collect();
                let extended = FoldedView::extend(*g.label(v), &refs);
                let direct = FoldedView::build(&g, v, d + 1).unwrap();
                assert_eq!(extended, direct, "node {v}, depth {d}");
            }
        }
    }

    #[test]
    fn leaf_and_isolated_extension() {
        let leaf = FoldedView::leaf(9u32);
        assert_eq!(leaf.depth(), 1);
        assert_eq!(leaf.entry_count(), 1);
        let extended = FoldedView::extend(9u32, &[]);
        assert_eq!(extended, FoldedView::leaf(9u32));
    }

    #[test]
    fn level_widths_reflect_refinement_classes() {
        // With d much larger than n, low levels see the whole graph: the
        // width of level k equals the number of depth-(k+1) view classes.
        let g = fig1_c6();
        let folded = FoldedView::build(&g, NodeId::new(0), 12).unwrap();
        use crate::refinement::{Refinement, ViewMode};
        let r = Refinement::compute(&g, ViewMode::Portless);
        for k in 0..6 {
            let expected = {
                let classes = r.classes_at_clamped(k);
                let mut cs: Vec<u32> = classes.to_vec();
                cs.sort_unstable();
                cs.dedup();
                cs.len()
            };
            assert_eq!(folded.level_width(k), Some(expected), "level {k}");
        }
    }

    #[test]
    fn truncation_maps_are_consistent() {
        let g = generators::petersen().with_degree_labels();
        let folded = FoldedView::build(&g, NodeId::new(3), 8).unwrap();
        let maps = folded.truncation_maps().unwrap();
        assert_eq!(maps.len(), 7);
        for (k, map) in maps.iter().enumerate() {
            assert_eq!(map.len(), folded.level_width(k + 1).unwrap());
            for &img in map {
                assert!((img as usize) < folded.level_width(k).unwrap());
            }
        }
    }

    #[test]
    fn open_truncation_fails_on_bipartite_but_closed_succeeds() {
        let g = fig1_c6();
        let open = FoldedView::build(&g, NodeId::new(0), 8).unwrap();
        assert!(open.truncation_maps().is_err());
        let closed = FoldedView::build_closed(&g, NodeId::new(0), 8).unwrap();
        assert!(closed.truncation_maps().is_ok());
    }

    #[test]
    fn closed_view_equality_matches_open_view_equality() {
        // Closed views carry the same distinguishing power.
        for g in [fig1_c6(), generators::petersen().with_uniform_label(0u32)] {
            let d = 9;
            let open: Vec<_> =
                g.graph().nodes().map(|v| FoldedView::build(&g, v, d).unwrap()).collect();
            let closed: Vec<_> =
                g.graph().nodes().map(|v| FoldedView::build_closed(&g, v, d).unwrap()).collect();
            let n = g.node_count();
            for u in 0..n {
                for v in 0..n {
                    assert_eq!(open[u] == open[v], closed[u] == closed[v], "{u} vs {v}");
                }
            }
        }
    }

    #[test]
    fn quotient_reconstruction_matches_direct_quotient() {
        use crate::quotient::quotient;
        use crate::refinement::ViewMode;
        for (g, n_bound) in [
            (fig1_c6(), 6usize),
            (
                generators::cycle(12)
                    .unwrap()
                    .with_labels((0..12).map(|i| (i % 3) as u32 + 1).collect())
                    .unwrap(),
                12,
            ),
            (generators::petersen().with_labels((0..10u32).collect()).unwrap(), 10),
        ] {
            let d = 2 * n_bound + 2;
            let direct = quotient(&g, ViewMode::Portless).unwrap();
            for v in g.graph().nodes() {
                let folded = FoldedView::build_closed(&g, v, d).unwrap();
                let (reconstructed, own) = folded.quotient_at_level(n_bound).unwrap();
                assert!(
                    anonet_graph::iso::are_isomorphic(&reconstructed, direct.graph()),
                    "quotient mismatch at node {v}"
                );
                // The own class carries the node's label.
                assert_eq!(reconstructed.label(own), g.label(v));
            }
        }
    }

    #[test]
    fn reconstruction_rejects_unstable_levels_and_open_views() {
        let g = fig1_c6();
        let closed = FoldedView::build_closed(&g, NodeId::new(0), 6).unwrap();
        // Level 1 of a shallow view is not stable/covering yet for C6?
        // It may or may not be; the range check is definite:
        assert!(closed.quotient_at_level(0).is_err());
        assert!(closed.quotient_at_level(5).is_err());
        // Open views lack the self entry.
        let open = FoldedView::build(&g, NodeId::new(0), 14).unwrap();
        assert!(open.quotient_at_level(6).is_err());
    }
}
