//! Explicit local view trees `L_d(v)` (paper, Section 1.1, Figure 1).

use std::fmt;

use anonet_graph::{Label, LabeledGraph, NodeId, Port};

use crate::error::ViewError;
use crate::Result;

/// Hard cap on explicit view-tree sizes; deeper views must go through
/// refinement instead. Shared with the arena path so both fail on
/// exactly the same inputs.
pub(crate) const SIZE_BUDGET: usize = 2_000_000;

/// An explicit depth-`d` local view: a rooted tree whose vertices carry
/// *marks* (the labels of the underlying nodes).
///
/// Built inductively exactly as in the paper: `L_1(v)` is a single marked
/// vertex; `L_{d+1}(v)` attaches `L_d(u)` under the root for every
/// neighbor `u ∈ Γ(v)`. Children are created in port order; use
/// [`ViewTree::canonicalize`] for an order-independent form.
///
/// # Example (the paper's Figure 1)
///
/// ```
/// use anonet_graph::{generators, NodeId};
/// use anonet_views::ViewTree;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c6 = generators::cycle(6)?.with_labels(vec![1u32, 2, 3, 1, 2, 3])?;
/// let view = ViewTree::build(&c6, NodeId::new(0), 3)?;
/// assert_eq!(*view.mark(), 1);          // u0 is colored 1
/// assert_eq!(view.children().len(), 2); // two neighbors on the cycle
/// assert_eq!(view.size(), 1 + 2 + 4);   // 1 + 2 + 2·2 vertices
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ViewTree<L> {
    mark: L,
    children: Vec<ViewTree<L>>,
}

impl<L: Label> ViewTree<L> {
    /// Builds `L_d(v)` in `g`. Depth `d = 1` is a single vertex.
    ///
    /// # Errors
    ///
    /// Returns [`ViewError::ViewTooLarge`] if the tree would exceed the
    /// internal size budget, and an invalid-parameter style error for
    /// `d = 0` (views start at depth 1).
    pub fn build(g: &LabeledGraph<L>, v: NodeId, d: usize) -> Result<Self> {
        if d == 0 {
            return Err(ViewError::ViewTooLarge { depth: 0, budget: SIZE_BUDGET });
        }
        // Pre-check size: sum over levels of (#walks of that length).
        let mut budget = SIZE_BUDGET;
        let tree = Self::build_rec(g, v, d, &mut budget)?;
        Ok(tree)
    }

    fn build_rec(g: &LabeledGraph<L>, v: NodeId, d: usize, budget: &mut usize) -> Result<Self> {
        if *budget == 0 {
            return Err(ViewError::ViewTooLarge { depth: d, budget: SIZE_BUDGET });
        }
        *budget -= 1;
        let mut children = Vec::new();
        if d > 1 {
            for &u in g.graph().neighbors(v) {
                children.push(Self::build_rec(g, u, d - 1, budget)?);
            }
        }
        Ok(ViewTree { mark: g.label(v).clone(), children })
    }

    /// Assembles a view tree from a mark and child sub-views (used by
    /// folded-view unfolding; does not validate completeness).
    pub fn from_parts(mark: L, children: Vec<ViewTree<L>>) -> Self {
        ViewTree { mark, children }
    }

    /// The mark of the root vertex.
    pub fn mark(&self) -> &L {
        &self.mark
    }

    /// The child sub-views (one per neighbor of the root's node).
    pub fn children(&self) -> &[ViewTree<L>] {
        &self.children
    }

    /// The child reached through `port` of the root's node, if built in
    /// port order and in range.
    pub fn child(&self, port: Port) -> Option<&ViewTree<L>> {
        self.children.get(port.index())
    }

    /// Total number of vertices.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ViewTree::size).sum::<usize>()
    }

    /// Depth of the view (a single vertex has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(ViewTree::depth).max().unwrap_or(0)
    }

    /// Sorts children recursively into a canonical order, making view
    /// equality order-independent.
    ///
    /// On 2-hop colored graphs siblings always carry distinct marks
    /// (the paper's Section 2.1 observation), so sorting by mark alone
    /// would already be total; sorting by full encoding is total on every
    /// graph.
    pub fn canonicalize(mut self) -> Self {
        self.canonicalize_in_place();
        self
    }

    fn canonicalize_in_place(&mut self) {
        for c in &mut self.children {
            c.canonicalize_in_place();
        }
        self.children.sort_by_key(|a| a.encoded());
    }

    /// A deterministic byte encoding; equal for equal trees (children
    /// order-sensitive — canonicalize first for structural equality).
    pub fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.mark.encode(out);
        (self.children.len() as u64).encode(out);
        for c in &self.children {
            c.encode_into(out);
        }
    }

    /// The canonical byte encoding — the encoding of the canonicalized
    /// tree — computed from borrowed data, without cloning the tree.
    ///
    /// Equal iff the views are equal as unordered marked trees, i.e.
    /// `t.canonical_encoding() == t.clone().canonicalize().encoded()`
    /// always holds (children are sorted by their own canonical
    /// encodings at every level, exactly as [`ViewTree::canonicalize`]
    /// does in place).
    pub fn canonical_encoding(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.canonical_encode_into(&mut out);
        out
    }

    fn canonical_encode_into(&self, out: &mut Vec<u8>) {
        self.mark.encode(out);
        (self.children.len() as u64).encode(out);
        let mut child_encodings: Vec<Vec<u8>> =
            self.children.iter().map(ViewTree::canonical_encoding).collect();
        child_encodings.sort();
        for enc in child_encodings {
            out.extend_from_slice(&enc);
        }
    }

    /// `true` iff the canonical forms of the two views are equal — i.e.
    /// the views are equal as unordered marked trees.
    pub fn view_eq(&self, other: &Self) -> bool {
        self.canonical_encoding() == other.canonical_encoding()
    }

    /// Renders the tree with ASCII indentation (root first), useful for
    /// regenerating the paper's Figure 1.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_rec(0, &mut out);
        out
    }

    fn render_rec(&self, indent: usize, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(out, "{}{:?}", "  ".repeat(indent), self.mark);
        for c in &self.children {
            c.render_rec(indent + 1, out);
        }
    }
}

impl<L: Label> fmt::Display for ViewTree<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ViewTree(depth={}, size={})", self.depth(), self.size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::generators;

    fn fig1_c6() -> LabeledGraph<u32> {
        generators::cycle(6).unwrap().with_labels(vec![1u32, 2, 3, 1, 2, 3]).unwrap()
    }

    #[test]
    fn depth_one_is_a_single_vertex() {
        let g = fig1_c6();
        let t = ViewTree::build(&g, NodeId::new(2), 1).unwrap();
        assert_eq!(t.size(), 1);
        assert_eq!(t.depth(), 1);
        assert_eq!(*t.mark(), 3);
        assert!(t.children().is_empty());
    }

    #[test]
    fn figure1_structure() {
        // Figure 1: depth-3 view of u0 in the colored C6. Root marked 1;
        // children marked 2 and 3 (the cycle neighbors); each child has
        // two children (back to 1, and onward).
        let g = fig1_c6();
        let t = ViewTree::build(&g, NodeId::new(0), 3).unwrap();
        assert_eq!(t.depth(), 3);
        assert_eq!(t.size(), 7);
        let mut child_marks: Vec<u32> = t.children().iter().map(|c| *c.mark()).collect();
        child_marks.sort();
        assert_eq!(child_marks, vec![2, 3]);
        for c in t.children() {
            assert_eq!(c.children().len(), 2);
            // grandchildren of the "2" child: marks {1, 3}; of "3": {1, 2}
            let mut gm: Vec<u32> = c.children().iter().map(|g| *g.mark()).collect();
            gm.sort();
            if *c.mark() == 2 {
                assert_eq!(gm, vec![1, 3]);
            } else {
                assert_eq!(gm, vec![1, 2]);
            }
        }
    }

    #[test]
    fn equal_colors_have_equal_views_in_c6() {
        // In Figure 1's C6, nodes 0 and 3 share color 1 and in fact share
        // all views (the graph is a product of C3).
        let g = fig1_c6();
        for d in 1..=8 {
            let a = ViewTree::build(&g, NodeId::new(0), d).unwrap();
            let b = ViewTree::build(&g, NodeId::new(3), d).unwrap();
            assert!(a.view_eq(&b), "views differ at depth {d}");
        }
        // Different colors: views differ from depth 1 on.
        let a = ViewTree::build(&g, NodeId::new(0), 1).unwrap();
        let b = ViewTree::build(&g, NodeId::new(1), 1).unwrap();
        assert!(!a.view_eq(&b));
    }

    #[test]
    fn uniform_cycle_views_are_all_equal() {
        let g = generators::cycle(5).unwrap().with_uniform_label(0u8);
        let views: Vec<_> =
            (0..5).map(|v| ViewTree::build(&g, NodeId::new(v), 4).unwrap()).collect();
        for w in views.windows(2) {
            assert!(w[0].view_eq(&w[1]));
        }
    }

    #[test]
    fn canonicalize_is_order_independent() {
        // Two port numberings of the same star around node 0.
        let g1 = anonet_graph::Graph::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let g2 = anonet_graph::Graph::from_edges(3, &[(0, 2), (0, 1)]).unwrap();
        let l1 = g1.with_labels(vec![9u32, 5, 7]).unwrap();
        let l2 = g2.with_labels(vec![9u32, 5, 7]).unwrap();
        let t1 = ViewTree::build(&l1, NodeId::new(0), 2).unwrap();
        let t2 = ViewTree::build(&l2, NodeId::new(0), 2).unwrap();
        assert_ne!(t1.encoded(), t2.encoded()); // port order differs
        assert!(t1.view_eq(&t2)); // but the views are equal
    }

    #[test]
    fn size_grows_like_walks() {
        // In a cycle, the number of depth-k level vertices is 2^(k-1) for
        // k >= 2, so size(d) = 1 + 2 + 4 + … + 2^(d-1) = 2^d - 1.
        let g = generators::cycle(8).unwrap().with_uniform_label(0u8);
        for d in 1..=6 {
            let t = ViewTree::build(&g, NodeId::new(0), d).unwrap();
            assert_eq!(t.size(), (1 << d) - 1);
        }
    }

    #[test]
    fn oversized_views_are_rejected() {
        let g = generators::complete(8).unwrap().with_uniform_label(0u8);
        // 7^d vertices: depth 9 is ~40M, over budget.
        let err = ViewTree::build(&g, NodeId::new(0), 9).unwrap_err();
        assert!(matches!(err, ViewError::ViewTooLarge { .. }));
    }

    #[test]
    fn render_contains_marks() {
        let g = fig1_c6();
        let t = ViewTree::build(&g, NodeId::new(0), 2).unwrap();
        let r = t.render();
        assert!(r.contains('1') && r.contains('2') && r.contains('3'));
    }

    #[test]
    fn canonical_encoding_matches_canonicalize_then_encode() {
        // The borrowed canonical encoding must agree byte-for-byte with
        // the clone-canonicalize-encode route it replaced, including on
        // trees whose children arrive in non-canonical port order.
        let g = fig1_c6();
        for v in 0..6 {
            for d in 1..=4 {
                let t = ViewTree::build(&g, NodeId::new(v), d).unwrap();
                assert_eq!(
                    t.canonical_encoding(),
                    t.clone().canonicalize().encoded(),
                    "node {v} depth {d}"
                );
            }
        }
        // A hand-built tree with deliberately unsorted children.
        let t = ViewTree::from_parts(
            9u32,
            vec![
                ViewTree::from_parts(7, vec![ViewTree::from_parts(5, vec![])]),
                ViewTree::from_parts(3, vec![]),
            ],
        );
        assert_eq!(t.canonical_encoding(), t.clone().canonicalize().encoded());
    }

    #[test]
    fn depth_zero_is_an_error() {
        let g = fig1_c6();
        assert!(ViewTree::build(&g, NodeId::new(0), 0).is_err());
    }
}
