//! Universal covers `U(G)` (paper, Section 1.3 related work).
//!
//! The universal cover is the (possibly infinite) tree obtained from a
//! depth-∞ view by "(1) for every vertex `x` pruning `x`'s child
//! corresponding to `x`'s parent; and (2) making every edge undirected" —
//! i.e. the *non-backtracking* unfolding of the graph. Norris' theorem
//! [39] is stated in terms of `U(G)`; this module provides finite
//! fragments of it so the experiments can cross-check the view-based
//! statements against the cover-based original.

use anonet_graph::{Label, LabeledGraph, NodeId};

use crate::view_tree::ViewTree;
use crate::Result;

/// Builds the depth-`d` fragment of the universal cover rooted at `v`:
/// like the local view, but a vertex never descends back through the edge
/// it was entered by (no immediate backtracking).
///
/// On a tree this reproduces the tree itself; on a cycle it unrolls into
/// a path; on graphs with girth `> 2d` it is the view without its
/// backtracking blow-up.
///
/// # Errors
///
/// Returns a view error for `d = 0`.
pub fn cover_fragment<L: Label>(g: &LabeledGraph<L>, v: NodeId, d: usize) -> Result<ViewTree<L>> {
    if d == 0 {
        return Err(crate::error::ViewError::ViewTooLarge { depth: 0, budget: 0 });
    }
    Ok(build(g, v, None, d))
}

fn build<L: Label>(
    g: &LabeledGraph<L>,
    v: NodeId,
    parent: Option<NodeId>,
    d: usize,
) -> ViewTree<L> {
    let mut children = Vec::new();
    if d > 1 {
        let mut skipped_parent = false;
        for &u in g.graph().neighbors(v) {
            // Prune exactly one child toward the parent (parallel edges do
            // not exist in simple graphs, so "the" edge is unambiguous).
            if !skipped_parent && Some(u) == parent {
                skipped_parent = true;
                continue;
            }
            children.push(build(g, u, Some(v), d - 1));
        }
    }
    ViewTree::from_parts(g.label(v).clone(), children)
}

/// Number of vertices in the depth-`d` cover fragment — grows like
/// `(Δ-1)^d` instead of the view's `Δ^d`.
pub fn cover_fragment_size<L: Label>(g: &LabeledGraph<L>, v: NodeId, d: usize) -> Result<usize> {
    Ok(cover_fragment(g, v, d)?.size())
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::generators;

    #[test]
    fn cover_of_a_tree_is_the_tree() {
        // From a leaf of P4, the depth-4 cover fragment is the whole path:
        // exactly n vertices, no blow-up.
        let g = generators::path(4).unwrap().with_labels(vec![1u32, 2, 3, 4]).unwrap();
        let frag = cover_fragment(&g, NodeId::new(0), 4).unwrap();
        assert_eq!(frag.size(), 4);
        // Compare: the *view* of the same depth backtracks and is larger.
        let view = crate::ViewTree::build(&g, NodeId::new(0), 4).unwrap();
        assert!(view.size() > frag.size());
    }

    #[test]
    fn cover_of_a_cycle_unrolls_into_a_path() {
        let g = generators::cycle(6).unwrap().with_uniform_label(0u8);
        for d in 1..=10 {
            let frag = cover_fragment(&g, NodeId::new(0), d).unwrap();
            // A 2-regular graph's non-backtracking unfolding: the root has
            // two arms of length d-1: 1 + 2(d-1) vertices.
            assert_eq!(frag.size(), 1 + 2 * (d - 1));
        }
    }

    #[test]
    fn cover_fragments_agree_on_view_equivalent_nodes() {
        // Nodes with equal views have equal covers (Fact 1 territory):
        // C6 colored 1,2,3,1,2,3 — antipodal nodes agree.
        let g = generators::cycle(6).unwrap().with_labels(vec![1u32, 2, 3, 1, 2, 3]).unwrap();
        for d in 1..=8 {
            let a = cover_fragment(&g, NodeId::new(1), d).unwrap().canonicalize();
            let b = cover_fragment(&g, NodeId::new(4), d).unwrap().canonicalize();
            assert_eq!(a.encoded(), b.encoded(), "depth {d}");
        }
    }

    #[test]
    fn cover_is_smaller_than_view_on_regular_graphs() {
        let g = generators::petersen().with_degree_labels();
        let d = 7;
        let view = crate::ViewTree::build(&g, NodeId::new(0), d).unwrap().size();
        let cover = cover_fragment_size(&g, NodeId::new(0), d).unwrap();
        // View ~3^d, cover ~3·2^(d-1).
        assert!(cover < view / 2, "cover {cover} vs view {view}");
    }

    #[test]
    fn depth_zero_is_an_error() {
        let g = generators::cycle(3).unwrap().with_uniform_label(0u8);
        assert!(cover_fragment(&g, NodeId::new(0), 0).is_err());
    }
}
