//! Arena-backed view trees: the allocation-free fast path for `L_d(v)`.
//!
//! [`ViewTree`](crate::ViewTree) is the paper-literal recursive structure:
//! every vertex is a heap node owning a `Vec` of children. That is the
//! right shape for Figure 1 and for the differential oracles, but it is
//! the wrong shape for a million-node run: building the depth-`p` view of
//! every node every phase allocates `Θ(Δ^p)` little vectors per node per
//! phase, and canonicalizing clones encodings up the tree.
//!
//! [`ViewArena`] stores one view tree (or many) as four flat vectors —
//! interned marks, child-slice offsets, child-slice lengths, and one
//! shared child-index pool — addressed by dense `u32` handles. After the
//! first build warms the vectors up, [`ViewArena::reset`] retains every
//! allocation, so steady-state rebuilds touch the allocator only when a
//! *new* distinct encoding is interned. Canonical encodings are computed
//! bottom-up into retained scratch buffers and hash-consed through the
//! same [`Interner`] the `A_*` engine uses, so identical subtrees across
//! nodes and phases are stored once and compared as `u32`s.
//!
//! Byte-compatibility is load-bearing: [`ViewArena::canonical_encoding`]
//! produces exactly the bytes of
//! [`ViewTree::canonical_encoding`](crate::ViewTree::canonical_encoding),
//! and the build observes the same size budget with the same traversal
//! order, so the two paths are interchangeable — the testkit differential
//! oracle and the unit tests below pin this byte-for-byte.

use std::cell::RefCell;
use std::mem;

use anonet_graph::{Label, LabeledGraph, NodeId};

use crate::error::ViewError;
use crate::interner::{Interner, Sym};
use crate::view_tree::SIZE_BUDGET;
use crate::Result;

/// Handle to a vertex of an arena-resident view tree.
///
/// Valid only for the [`ViewArena`] that issued it, until the next
/// [`ViewArena::reset`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ViewNode(u32);

impl ViewNode {
    /// The dense index of this vertex in its arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Counters describing an arena's lifetime effectiveness (monotone across
/// [`ViewArena::reset`]; see [`ViewArena::stats`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ArenaStats {
    /// Interner lookups that found an existing encoding.
    pub interner_hits: u64,
    /// Interner lookups that inserted a new encoding.
    pub interner_misses: u64,
    /// Total view-tree vertices built over the arena's lifetime.
    pub nodes_built: u64,
    /// Bytes currently retained by the interner's distinct encodings.
    pub interned_bytes: u64,
}

/// A flat, index-based store for view trees.
///
/// # Example
///
/// ```
/// use anonet_graph::{generators, NodeId};
/// use anonet_views::{ViewArena, ViewTree};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c6 = generators::cycle(6)?.with_labels(vec![1u32, 2, 3, 1, 2, 3])?;
/// let mut arena = ViewArena::new();
/// let root = arena.build(&c6, NodeId::new(0), 3)?;
/// let reference = ViewTree::build(&c6, NodeId::new(0), 3)?;
/// assert_eq!(arena.canonical_encoding(root), reference.canonical_encoding());
/// assert_eq!(arena.node_count(), reference.size());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct ViewArena {
    interner: Interner,
    marks: Vec<Sym>,
    child_start: Vec<u32>,
    child_count: Vec<u32>,
    children: Vec<u32>,
    /// Stack-discipline scratch: child handles of the vertex currently
    /// being assembled (recursion pushes grandchildren above our base).
    build_scratch: Vec<u32>,
    /// Stack-discipline scratch for bottom-up encoding: child encoding
    /// symbols awaiting their parent.
    enc_scratch: Vec<Sym>,
    /// Retained byte buffer for assembling one vertex's encoding.
    enc_buf: Vec<u8>,
    /// Retained buffer for sorting one vertex's child encodings.
    sort_buf: Vec<Sym>,
    nodes_built: u64,
}

impl ViewArena {
    /// An empty arena.
    pub fn new() -> Self {
        ViewArena::default()
    }

    /// Builds `L_d(v)` of `g` into the arena, returning the root handle.
    ///
    /// Semantics match [`ViewTree::build`](crate::ViewTree::build)
    /// exactly: depth 1 is a single vertex, depth 0 is an error, children
    /// are created in port order, and the same [`SIZE_BUDGET`]-vertex
    /// budget applies per call with the same traversal order (so the two
    /// paths fail on the same inputs with the same error).
    ///
    /// On error the arena may hold a partial tree; call [`reset`] before
    /// reusing it.
    ///
    /// # Errors
    ///
    /// [`ViewError::ViewTooLarge`] for `d = 0` or when the tree would
    /// exceed the size budget.
    ///
    /// [`reset`]: ViewArena::reset
    pub fn build<L: Label>(
        &mut self,
        g: &LabeledGraph<L>,
        v: NodeId,
        d: usize,
    ) -> Result<ViewNode> {
        if d == 0 {
            return Err(ViewError::ViewTooLarge { depth: 0, budget: SIZE_BUDGET });
        }
        let mut budget = SIZE_BUDGET;
        let root = self.build_rec(g, v, d, &mut budget)?;
        Ok(ViewNode(root))
    }

    fn build_rec<L: Label>(
        &mut self,
        g: &LabeledGraph<L>,
        v: NodeId,
        d: usize,
        budget: &mut usize,
    ) -> Result<u32> {
        if *budget == 0 {
            return Err(ViewError::ViewTooLarge { depth: d, budget: SIZE_BUDGET });
        }
        *budget -= 1;
        let mark = {
            let mut buf = mem::take(&mut self.enc_buf);
            buf.clear();
            g.label(v).encode(&mut buf);
            let sym = self.interner.intern(&buf);
            self.enc_buf = buf;
            sym
        };
        let base = self.build_scratch.len();
        if d > 1 {
            for &u in g.graph().neighbors(v) {
                let child = self.build_rec(g, u, d - 1, budget)?;
                self.build_scratch.push(child);
            }
        }
        let start = self.children.len() as u32;
        let count = (self.build_scratch.len() - base) as u32;
        self.children.extend_from_slice(&self.build_scratch[base..]);
        self.build_scratch.truncate(base);
        let id = self.marks.len() as u32;
        self.marks.push(mark);
        self.child_start.push(start);
        self.child_count.push(count);
        self.nodes_built += 1;
        Ok(id)
    }

    /// The canonical encoding of the subtree rooted at `node`, as an
    /// interned symbol. Equal symbols ⇔ equal views (within this arena's
    /// interner). Computed bottom-up with retained scratch; identical
    /// subtrees are interned once.
    pub fn canonical_sym(&mut self, node: ViewNode) -> Sym {
        self.encode_rec(node.0)
    }

    /// The canonical byte encoding of the subtree rooted at `node` —
    /// byte-for-byte equal to
    /// [`ViewTree::canonical_encoding`](crate::ViewTree::canonical_encoding)
    /// of the same view.
    pub fn canonical_encoding(&mut self, node: ViewNode) -> Vec<u8> {
        let sym = self.encode_rec(node.0);
        self.interner.resolve(sym).to_vec()
    }

    fn encode_rec(&mut self, node: u32) -> Sym {
        let base = self.enc_scratch.len();
        let start = self.child_start[node as usize] as usize;
        let count = self.child_count[node as usize] as usize;
        for i in start..start + count {
            let child = self.children[i];
            let sym = self.encode_rec(child);
            self.enc_scratch.push(sym);
        }
        // Sort this vertex's child encodings by their bytes — exactly the
        // `child_encodings.sort()` of the recursive path.
        let mut sorted = mem::take(&mut self.sort_buf);
        sorted.clear();
        sorted.extend_from_slice(&self.enc_scratch[base..]);
        self.enc_scratch.truncate(base);
        sorted.sort_by(|&a, &b| self.interner.resolve(a).cmp(self.interner.resolve(b)));

        let mut buf = mem::take(&mut self.enc_buf);
        buf.clear();
        buf.extend_from_slice(self.interner.resolve(self.marks[node as usize]));
        (count as u64).encode(&mut buf);
        for &sym in &sorted {
            buf.extend_from_slice(self.interner.resolve(sym));
        }
        let sym = self.interner.intern(&buf);
        self.enc_buf = buf;
        self.sort_buf = sorted;
        sym
    }

    /// Number of vertices currently resident.
    pub fn node_count(&self) -> usize {
        self.marks.len()
    }

    /// The mark of a vertex, as its interned label-encoding symbol.
    pub fn mark(&self, node: ViewNode) -> Sym {
        self.marks[node.index()]
    }

    /// The bytes of a vertex's mark (the encoded label).
    pub fn mark_bytes(&self, node: ViewNode) -> &[u8] {
        self.interner.resolve(self.marks[node.index()])
    }

    /// The child handles of a vertex, in port order.
    pub fn children(&self, node: ViewNode) -> impl Iterator<Item = ViewNode> + '_ {
        let start = self.child_start[node.index()] as usize;
        let count = self.child_count[node.index()] as usize;
        self.children[start..start + count].iter().map(|&c| ViewNode(c))
    }

    /// Number of children of a vertex.
    pub fn degree(&self, node: ViewNode) -> usize {
        self.child_count[node.index()] as usize
    }

    /// Total vertices in the subtree rooted at `node` (the recursive
    /// [`size`](crate::ViewTree::size)).
    pub fn subtree_size(&self, node: ViewNode) -> usize {
        let mut total = 0usize;
        let mut stack = vec![node.0];
        while let Some(v) = stack.pop() {
            total += 1;
            let start = self.child_start[v as usize] as usize;
            let count = self.child_count[v as usize] as usize;
            stack.extend_from_slice(&self.children[start..start + count]);
        }
        total
    }

    /// Clears resident vertices while retaining every allocation and the
    /// interner (the cross-build cache). Steady-state rebuilds after a
    /// `reset` are allocation-free except for newly seen encodings.
    pub fn reset(&mut self) {
        self.marks.clear();
        self.child_start.clear();
        self.child_count.clear();
        self.children.clear();
        self.build_scratch.clear();
        self.enc_scratch.clear();
    }

    /// Bytes retained by the flat vectors (capacity, not length) plus the
    /// interner's stored encodings — the arena's contribution to the
    /// process footprint, used by E21's peak-RSS proxy.
    pub fn retained_bytes(&self) -> usize {
        self.marks.capacity() * mem::size_of::<Sym>()
            + self.child_start.capacity() * mem::size_of::<u32>()
            + self.child_count.capacity() * mem::size_of::<u32>()
            + self.children.capacity() * mem::size_of::<u32>()
            + self.build_scratch.capacity() * mem::size_of::<u32>()
            + self.enc_scratch.capacity() * mem::size_of::<Sym>()
            + self.enc_buf.capacity()
            + self.sort_buf.capacity() * mem::size_of::<Sym>()
            + self.interner.stored_bytes()
    }

    /// Lifetime counters (hit/miss feed the `views.interner.{hit,miss}`
    /// obs counters; `nodes_built` feeds the `views.arena.nodes` gauge).
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            interner_hits: self.interner.hits(),
            interner_misses: self.interner.misses(),
            nodes_built: self.nodes_built,
            interned_bytes: self.interner.stored_bytes() as u64,
        }
    }

    /// Read access to the arena's interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }
}

thread_local! {
    static THREAD_ARENA: RefCell<ViewArena> = RefCell::new(ViewArena::new());
}

/// Builds `L_d(v)` and returns its canonical encoding through a
/// thread-local [`ViewArena`] — the drop-in replacement for
/// `ViewTree::build(g, v, d)?.canonical_encoding()` on hot paths.
///
/// The per-thread arena is reset (allocations retained) on every call and
/// its interner persists across calls, so steady-state cost is one
/// budget-checked traversal plus interner lookups.
///
/// # Errors
///
/// [`ViewError::ViewTooLarge`] exactly when
/// [`ViewTree::build`](crate::ViewTree::build) would fail.
pub fn canonical_view_encoding<L: Label>(
    g: &LabeledGraph<L>,
    v: NodeId,
    d: usize,
) -> Result<Vec<u8>> {
    THREAD_ARENA.with(|cell| {
        let mut arena = cell.borrow_mut();
        arena.reset();
        let root = arena.build(g, v, d)?;
        Ok(arena.canonical_encoding(root))
    })
}

/// Lifetime stats of this thread's arena (see [`ViewArena::stats`]).
pub fn thread_arena_stats() -> ArenaStats {
    THREAD_ARENA.with(|cell| cell.borrow().stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view_tree::ViewTree;
    use anonet_graph::generators;

    fn fig1_c6() -> LabeledGraph<u32> {
        generators::cycle(6).unwrap().with_labels(vec![1u32, 2, 3, 1, 2, 3]).unwrap()
    }

    #[test]
    fn matches_recursive_reference_bytes() {
        let graphs: Vec<LabeledGraph<u32>> = vec![
            fig1_c6(),
            generators::path(6).unwrap().with_uniform_label(0u32),
            generators::petersen().with_degree_labels().map_labels(|l| *l),
            generators::star(5).unwrap().with_labels(vec![9u32, 5, 7, 5, 3]).unwrap(),
        ];
        let mut arena = ViewArena::new();
        for g in &graphs {
            for v in g.graph().nodes() {
                for d in 1..=4 {
                    arena.reset();
                    let root = arena.build(g, v, d).unwrap();
                    let reference = ViewTree::build(g, v, d).unwrap();
                    assert_eq!(
                        arena.canonical_encoding(root),
                        reference.canonical_encoding(),
                        "node {v:?} depth {d}"
                    );
                    assert_eq!(arena.node_count(), reference.size());
                    assert_eq!(arena.subtree_size(root), reference.size());
                }
            }
        }
    }

    #[test]
    fn depth_zero_and_budget_match_reference_errors() {
        let g = fig1_c6();
        let mut arena = ViewArena::new();
        assert_eq!(
            arena.build(&g, NodeId::new(0), 0).unwrap_err(),
            ViewTree::build(&g, NodeId::new(0), 0).unwrap_err()
        );
        let big = generators::complete(8).unwrap().with_uniform_label(0u8);
        arena.reset();
        assert_eq!(
            arena.build(&big, NodeId::new(0), 9).unwrap_err(),
            ViewTree::build(&big, NodeId::new(0), 9).unwrap_err()
        );
    }

    #[test]
    fn reset_reuses_without_changing_bytes() {
        let g = fig1_c6();
        let mut arena = ViewArena::new();
        let mut first = Vec::new();
        for round in 0..3 {
            for v in 0..6 {
                arena.reset();
                let root = arena.build(&g, NodeId::new(v), 3).unwrap();
                let enc = arena.canonical_encoding(root);
                if round == 0 {
                    first.push(enc);
                } else {
                    assert_eq!(enc, first[v], "round {round} node {v}");
                }
            }
        }
        // The interner keeps seeing the same encodings: later rounds are
        // pure hits.
        let stats = arena.stats();
        assert!(stats.interner_hits > 0);
        assert!(stats.nodes_built >= 3 * 6);
    }

    #[test]
    fn interned_subtrees_are_shared() {
        // All nodes of a uniform cycle share all sub-views: after the
        // first node, encodings of the rest are interner hits.
        let g = generators::cycle(8).unwrap().with_uniform_label(0u8);
        let mut arena = ViewArena::new();
        let mut syms = Vec::new();
        for v in 0..8 {
            arena.reset();
            let root = arena.build(&g, NodeId::new(v), 4).unwrap();
            syms.push(arena.canonical_sym(root));
        }
        syms.dedup();
        assert_eq!(syms.len(), 1, "uniform cycle views must intern to one symbol");
    }

    #[test]
    fn thread_helper_matches_reference() {
        let g = fig1_c6();
        for v in 0..6 {
            for d in 1..=3 {
                assert_eq!(
                    canonical_view_encoding(&g, NodeId::new(v), d).unwrap(),
                    ViewTree::build(&g, NodeId::new(v), d).unwrap().canonical_encoding()
                );
            }
        }
        let stats = thread_arena_stats();
        assert!(stats.nodes_built > 0);
        assert!(stats.interner_misses > 0);
    }

    #[test]
    fn children_are_in_port_order() {
        let g = fig1_c6();
        let mut arena = ViewArena::new();
        let root = arena.build(&g, NodeId::new(0), 2).unwrap();
        let tree = ViewTree::build(&g, NodeId::new(0), 2).unwrap();
        let marks: Vec<Vec<u8>> =
            arena.children(root).map(|c| arena.mark_bytes(c).to_vec()).collect();
        let expect: Vec<Vec<u8>> = tree.children().iter().map(|c| c.mark().encoded()).collect();
        assert_eq!(marks, expect);
        assert_eq!(arena.degree(root), 2);
    }

    #[test]
    fn retained_bytes_is_positive_after_build() {
        let g = fig1_c6();
        let mut arena = ViewArena::new();
        let _ = arena.build(&g, NodeId::new(0), 3).unwrap();
        assert!(arena.retained_bytes() > 0);
        let before = arena.retained_bytes();
        arena.reset();
        // reset retains capacity: footprint does not shrink.
        assert_eq!(arena.retained_bytes(), before);
    }
}
