//! The finite view graph `G_*` — the quotient of a graph by view
//! equivalence (paper, Definition 1 and Section 3).

use anonet_graph::{Graph, Label, LabeledGraph, NodeId};

use crate::error::ViewError;
use crate::refinement::{BoundedRefinement, ViewMode};
use crate::Result;

/// The finite view graph `G_*` of a labeled graph `G`, together with the
/// projection `f_* : V → V_*`.
///
/// By the paper's Corollary 2, `G_* ≅ G_∞` (the infinite view graph), and
/// by Lemma 2 the projection is a factorizing map: surjective,
/// label-preserving, and a local isomorphism. Construction fails with a
/// descriptive error when the quotient would not be a simple graph — which
/// by (the argument of) Lemma 2 never happens on 2-hop colored graphs.
///
/// # Example
///
/// ```
/// use anonet_graph::generators;
/// use anonet_views::{quotient, ViewMode};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Figure 2: colored C12 and C6 both collapse to the prime C3.
/// let c12 = generators::cycle(12)?
///     .with_labels(vec![1u32, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3])?;
/// let q = quotient(&c12, ViewMode::Portless)?;
/// assert_eq!(q.graph().node_count(), 3);
/// assert_eq!(q.multiplicity(), Some(4)); // fibers have uniform size 4
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ViewQuotient<L> {
    graph: LabeledGraph<L>,
    class_of: Vec<NodeId>,
    representatives: Vec<NodeId>,
    mode: ViewMode,
}

impl<L: Label> ViewQuotient<L> {
    /// The quotient graph `G_*` with its inherited labels.
    pub fn graph(&self) -> &LabeledGraph<L> {
        &self.graph
    }

    /// The projection `f_*`: the quotient node under each original node.
    pub fn class_of(&self) -> &[NodeId] {
        &self.class_of
    }

    /// The image of one node under the projection.
    pub fn project(&self, v: NodeId) -> NodeId {
        self.class_of[v.index()]
    }

    /// One representative original node per quotient node.
    pub fn representatives(&self) -> &[NodeId] {
        &self.representatives
    }

    /// Size of the fiber over quotient node `c`.
    pub fn fiber_size(&self, c: NodeId) -> usize {
        self.class_of.iter().filter(|&&x| x == c).count()
    }

    /// `Some(m)` if every fiber has the same size `m` (always the case for
    /// quotients of connected graphs: `|V| = m·|V_*|`, paper Section
    /// 2.3.1), `None` otherwise.
    pub fn multiplicity(&self) -> Option<usize> {
        let first = self.fiber_size(NodeId::new(0));
        self.graph.graph().nodes().all(|c| self.fiber_size(c) == first).then_some(first)
    }

    /// `true` iff the quotient is trivial: the original graph already had
    /// all views distinct (it is *prime*, Lemma 4).
    pub fn is_trivial(&self) -> bool {
        self.graph.node_count() == self.class_of.len()
    }

    /// All fibers, indexed by quotient node: `fibers()[c]` lists the
    /// original nodes projecting onto class `c`.
    pub fn fibers(&self) -> Vec<Vec<NodeId>> {
        let mut fibers: Vec<Vec<NodeId>> = vec![Vec::new(); self.graph.node_count()];
        for (v, &c) in self.class_of.iter().enumerate() {
            fibers[c.index()].push(NodeId::new(v));
        }
        fibers
    }

    /// The view mode the quotient was computed under.
    pub fn mode(&self) -> ViewMode {
        self.mode
    }
}

/// Computes the finite view graph of `g` under the given [`ViewMode`].
///
/// # Errors
///
/// * [`ViewError::QuotientSelfLoop`] if some node is view-equivalent to a
///   neighbor (impossible when the labeling is a proper 1-hop coloring);
/// * [`ViewError::QuotientParallelEdge`] if some node has two
///   view-equivalent neighbors (impossible when it is a 2-hop coloring —
///   this is the paper's Lemma 2).
pub fn quotient<L: Label>(g: &LabeledGraph<L>, mode: ViewMode) -> Result<ViewQuotient<L>> {
    // Only the stable partition is consumed here, so the bounded engine
    // (two retained rounds, not O(n·rounds)) suffices.
    let refinement = BoundedRefinement::compute(g, mode);
    let classes = refinement.classes();
    let graph = g.graph();
    let k = refinement.class_count();

    // Simplicity checks, with witnesses.
    for v in graph.nodes() {
        let mut neighbor_classes = Vec::with_capacity(graph.degree(v));
        for &u in graph.neighbors(v) {
            if classes[u.index()] == classes[v.index()] {
                return Err(ViewError::QuotientSelfLoop { node: v.index() });
            }
            neighbor_classes.push(classes[u.index()]);
        }
        let mut dedup = neighbor_classes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        if dedup.len() != neighbor_classes.len() {
            return Err(ViewError::QuotientParallelEdge { node: v.index() });
        }
    }

    // Representatives: the minimum-index node of each class.
    let mut representatives: Vec<Option<NodeId>> = vec![None; k];
    for v in graph.nodes() {
        let c = classes[v.index()] as usize;
        if representatives[c].is_none() {
            representatives[c] = Some(v);
        }
    }
    let representatives: Vec<NodeId> =
        representatives.into_iter().map(|r| r.expect("classes are non-empty")).collect();

    // Quotient adjacency. PortAware: the representative's port order is
    // shared by every member of its class (the refinement key pins it
    // down), so ports descend to the quotient. Portless: members may
    // disagree on port order, so we fix a canonical one (ascending class).
    let mut adj: Vec<Vec<NodeId>> = Vec::with_capacity(k);
    for &rep in &representatives {
        let mut nbrs: Vec<NodeId> = graph
            .neighbors(rep)
            .iter()
            .map(|&u| NodeId::new(classes[u.index()] as usize))
            .collect();
        if mode == ViewMode::Portless {
            nbrs.sort_unstable();
        }
        adj.push(nbrs);
    }
    let qgraph = Graph::from_adjacency(adj).map_err(|e| {
        // Symmetry can only fail if the refinement was inconsistent, which
        // would be an internal bug — surface it loudly.
        unreachable!("quotient adjacency must be a valid simple graph: {e}")
    })?;

    let labels: Vec<L> = representatives.iter().map(|&r| g.label(r).clone()).collect();
    let qlabeled =
        LabeledGraph::new(qgraph, labels).expect("one label per quotient node by construction");

    let class_of: Vec<NodeId> = classes.iter().map(|&c| NodeId::new(c as usize)).collect();

    Ok(ViewQuotient { graph: qlabeled, class_of, representatives, mode })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::coloring::is_two_hop_coloring;
    use anonet_graph::{generators, iso};

    fn colored_cycle(n: usize) -> LabeledGraph<u32> {
        let labels: Vec<u32> = (0..n).map(|i| (i % 3) as u32 + 1).collect();
        generators::cycle(n).unwrap().with_labels(labels).unwrap()
    }

    #[test]
    fn figure2_c12_c6_c3_chain() {
        // All three graphs in Figure 2 share the same prime quotient C3.
        let c3 = colored_cycle(3);
        assert!(is_two_hop_coloring(&c3));
        for n in [3usize, 6, 12] {
            let g = colored_cycle(n);
            assert!(is_two_hop_coloring(&g));
            let q = quotient(&g, ViewMode::Portless).unwrap();
            assert_eq!(q.graph().node_count(), 3);
            assert_eq!(q.multiplicity(), Some(n / 3));
            assert!(iso::are_isomorphic(q.graph(), &c3));
        }
    }

    #[test]
    fn projection_is_label_preserving_local_isomorphism() {
        let g = colored_cycle(12);
        let q = quotient(&g, ViewMode::Portless).unwrap();
        let qg = q.graph();
        for v in g.graph().nodes() {
            let c = q.project(v);
            // label preserving
            assert_eq!(g.label(v), qg.label(c));
            // local isomorphism: neighbor classes = quotient neighbors, bijectively
            let mut img: Vec<NodeId> =
                g.graph().neighbors(v).iter().map(|&u| q.project(u)).collect();
            img.sort();
            let mut expect: Vec<NodeId> = qg.graph().neighbors(c).to_vec();
            expect.sort();
            assert_eq!(img, expect);
        }
    }

    #[test]
    fn port_aware_quotient_of_lift_recovers_base() {
        // Graph lifts mirror base ports fiber-wise, so even the finer
        // port-aware equivalence collapses each fiber: the quotient of a
        // lifted prime base is the base itself.
        let l = anonet_graph::lift::cyclic_cycle_lift(3, 4).unwrap();
        let g = l.lift_labels(&[1u32, 2, 3]).unwrap();
        let q = quotient(&g, ViewMode::PortAware).unwrap();
        assert_eq!(q.graph().node_count(), 3);
        assert_eq!(q.multiplicity(), Some(4));
        assert!(iso::are_isomorphic(q.graph(), &colored_cycle(3)));
    }

    #[test]
    fn port_aware_projection_preserves_ports() {
        let l = anonet_graph::lift::cyclic_cycle_lift(3, 4).unwrap();
        let g = l.lift_labels(&[1u32, 2, 3]).unwrap();
        let q = quotient(&g, ViewMode::PortAware).unwrap();
        let qg = q.graph().graph();
        for v in g.graph().nodes() {
            let c = q.project(v);
            for p in 0..g.graph().degree(v) {
                let port = anonet_graph::Port::new(p);
                assert_eq!(q.project(g.graph().endpoint(v, port)), qg.endpoint(c, port));
                assert_eq!(g.graph().reverse_port(v, port), qg.reverse_port(c, port));
            }
        }
    }

    #[test]
    fn prime_graph_quotient_is_trivial() {
        // Unique labels ⇒ all views distinct ⇒ quotient ≅ the graph itself.
        let g = generators::petersen().with_labels((0..10u32).collect()).unwrap();
        for mode in [ViewMode::Portless, ViewMode::PortAware] {
            let q = quotient(&g, mode).unwrap();
            assert!(q.is_trivial());
            assert!(iso::are_isomorphic(q.graph(), &g));
            assert_eq!(q.multiplicity(), Some(1));
        }
    }

    #[test]
    fn quotient_of_quotient_is_identity() {
        let g = colored_cycle(12);
        let q = quotient(&g, ViewMode::Portless).unwrap();
        let qq = quotient(q.graph(), ViewMode::Portless).unwrap();
        assert!(qq.is_trivial());
        assert!(iso::are_isomorphic(qq.graph(), q.graph()));
    }

    #[test]
    fn uniform_labels_fail_with_self_loop() {
        let g = generators::cycle(6).unwrap().with_uniform_label(0u8);
        let err = quotient(&g, ViewMode::Portless).unwrap_err();
        assert!(matches!(err, ViewError::QuotientSelfLoop { .. }));
    }

    #[test]
    fn one_hop_but_not_two_hop_fails_with_parallel_edge() {
        // C4 colored 1,2,1,2: proper 1-hop coloring, but node 0's two
        // neighbors (1 and 3) are view-equivalent.
        let g = generators::cycle(4).unwrap().with_labels(vec![1u8, 2, 1, 2]).unwrap();
        let err = quotient(&g, ViewMode::Portless).unwrap_err();
        assert!(matches!(err, ViewError::QuotientParallelEdge { .. }));
    }

    #[test]
    fn quotient_is_connected() {
        let g = colored_cycle(12);
        let q = quotient(&g, ViewMode::PortAware).unwrap();
        assert!(q.graph().graph().is_connected());
    }

    #[test]
    fn fibers_are_uniform_on_connected_graphs() {
        for n in [6usize, 9, 12, 15] {
            let q = quotient(&colored_cycle(n), ViewMode::Portless).unwrap();
            assert_eq!(q.multiplicity(), Some(n / 3), "n = {n}");
        }
    }

    #[test]
    fn fibers_partition_the_nodes() {
        let g = colored_cycle(12);
        let q = quotient(&g, ViewMode::Portless).unwrap();
        let fibers = q.fibers();
        assert_eq!(fibers.len(), 3);
        let mut all: Vec<NodeId> = fibers.concat();
        all.sort();
        assert_eq!(all, g.graph().nodes().collect::<Vec<_>>());
        for (c, fiber) in fibers.iter().enumerate() {
            for &v in fiber {
                assert_eq!(q.project(v), NodeId::new(c));
            }
        }
    }

    #[test]
    fn representatives_project_to_themselves() {
        let g = colored_cycle(9);
        let q = quotient(&g, ViewMode::PortAware).unwrap();
        for (c, &rep) in q.representatives().iter().enumerate() {
            assert_eq!(q.project(rep), NodeId::new(c));
        }
    }
}
