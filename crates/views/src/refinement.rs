//! Color refinement: the linear-time equivalent of view equality.
//!
//! Classic fact (implicit in the paper's use of Norris [39]): two nodes
//! have equal depth-`(k+1)` local views iff `k` rounds of color refinement
//! place them in the same class. Refinement partitions only ever get
//! finer, so they stabilize after at most `n - 1` rounds — the
//! finite-depth phenomenon that Section 3 of the paper exploits.
//!
//! Three engines share the round semantics:
//!
//! * [`Refinement`] — the full-history reference: retains every round
//!   (`O(n·rounds)` memory), needed only where per-round histories are
//!   consumed (the canonical order's `history_key`, per-depth view
//!   queries).
//! * [`BoundedRefinement`] — identical classes and depth, but retains
//!   only the last two rounds plus the stable partition. The default for
//!   quotients, Norris reports, and everything that reads only the stable
//!   partition.
//! * [`RefinementEngine`] — *incremental*: keeps the stable partition and
//!   a sorted per-class dirty set, and when labels evolve monotonically
//!   (new labels refine old — e.g. `A_*` appending output bits per
//!   phase), re-refines only classes whose neighborhood multiset changed
//!   instead of restarting from the label partition. Canonical ids and
//!   stabilization depth are recovered exactly by replaying the round
//!   trajectory on the class quotient (`O(classes)` per round, not
//!   `O(n)`), so the engine is observationally identical to
//!   [`Refinement::compute`] — a property the testkit differential oracle
//!   pins across graph families, view modes, and adversarial schedules.

use std::collections::{BTreeMap, BTreeSet};

use anonet_graph::{Label, LabeledGraph, NodeId};

/// Which notion of view equivalence to compute.
///
/// See the crate docs for the full discussion; in short:
/// [`ViewMode::Portless`] is the paper's literal definition, while
/// [`ViewMode::PortAware`] additionally distinguishes port structure and
/// is what lifting arbitrary port-sensitive algorithms requires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ViewMode {
    /// Views record node labels only (paper, Section 1.1). This is the
    /// paper-exact notion and the default: the derandomization machinery
    /// pairs it with *port-oblivious* algorithms, which by the paper's
    /// Section 1.3 remark lose no power on 2-hop colored graphs.
    #[default]
    Portless,
    /// Views additionally record, for each port `p`, the port through
    /// which the neighbor reached via `p` sees this node. Strictly finer
    /// than [`ViewMode::Portless`] (port numberings can break symmetry);
    /// used by the experiments that study the effect of ports.
    PortAware,
}

/// One node's composite key for a refinement round: its previous class
/// and its neighbor multiset/vector of `(previous class, reverse port)`.
pub type RoundKey = (u32, Vec<(u32, u32)>);

/// The canonical round-0 partition: dense class ids assigned by sorted
/// label encodings. Shared by every engine in this module.
pub fn initial_label_classes<L: Label>(g: &LabeledGraph<L>) -> Vec<u32> {
    let keys0: Vec<Vec<u8>> = g.graph().nodes().map(|v| g.label(v).encoded()).collect();
    assign_dense_classes(&keys0)
}

/// The refinement keys of nodes `lo..hi` for one round, given the
/// previous round's classes. Under [`ViewMode::Portless`] the neighbor
/// list is sorted into a multiset; under [`ViewMode::PortAware`] it stays
/// in port order and carries reverse ports.
///
/// Exposed so the batch layer can fan key construction over worker
/// threads in node-range chunks and commit them in node order — the
/// results are a pure function of `(g, prev, mode, lo, hi)`, so any
/// schedule reassembles the identical key vector.
pub fn round_keys<L: Label>(
    g: &LabeledGraph<L>,
    prev: &[u32],
    mode: ViewMode,
    lo: usize,
    hi: usize,
) -> Vec<RoundKey> {
    let graph = g.graph();
    (lo..hi)
        .map(|i| {
            let v = NodeId::new(i);
            let mut nbrs: Vec<(u32, u32)> = graph
                .neighbors(v)
                .iter()
                .enumerate()
                .map(|(p, &u)| {
                    let rev = match mode {
                        ViewMode::Portless => 0,
                        ViewMode::PortAware => {
                            graph.reverse_port(v, anonet_graph::Port::new(p)).index() as u32
                        }
                    };
                    (prev[u.index()], rev)
                })
                .collect();
            if mode == ViewMode::Portless {
                // Neighbor multiset, not port vector.
                nbrs.sort_unstable();
            }
            (prev[v.index()], nbrs)
        })
        .collect()
}

/// Sorts keys and assigns dense canonical ids by sorted order.
pub fn assign_dense_classes<K: Ord>(keys: &[K]) -> Vec<u32> {
    let mut sorted: Vec<&K> = keys.iter().collect();
    sorted.sort();
    sorted.dedup();
    let index: BTreeMap<&K, u32> =
        sorted.into_iter().enumerate().map(|(i, k)| (k, i as u32)).collect();
    keys.iter().map(|k| index[k]).collect()
}

fn class_count_of(classes: &[u32]) -> usize {
    let mut seen: Vec<u32> = classes.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// The result of running color refinement to stability, retaining the
/// full per-round history.
///
/// Class identifiers are *canonical*: they are assigned by sorting the
/// refinement keys, so isomorphic labeled graphs receive identical class
/// structures — which is what lets every node of an anonymous network
/// compute the same quotient independently.
///
/// Memory is `O(n·rounds)`; prefer [`BoundedRefinement`] unless the
/// per-round history itself is consumed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Refinement {
    /// `history[k][v]` = class of node `v` after `k` rounds (`k = 0` is
    /// the initial label/degree partition). The last entry is stable.
    history: Vec<Vec<u32>>,
    mode: ViewMode,
}

impl Refinement {
    /// Runs refinement on `g` until the partition stabilizes.
    pub fn compute<L: Label>(g: &LabeledGraph<L>, mode: ViewMode) -> Self {
        let n = g.node_count();

        // Round 0: labels only — so that `classes_at(k)` matches equality
        // of depth-(k+1) views exactly. (Degrees are picked up at round 1
        // as the neighbor-multiset size; the paper's convention that
        // labels include degrees makes the two initial partitions coincide
        // on its instances anyway.)
        let mut history = vec![initial_label_classes(g)];

        loop {
            let prev = history.last().expect("history is non-empty");
            let prev_count = class_count_of(prev);
            let keys = round_keys(g, prev, mode, 0, n);
            let next = assign_dense_classes(&keys);
            let next_count = class_count_of(&next);
            // Refinement only splits classes, so equal counts ⇒ equal
            // partitions ⇒ stable.
            if next_count == prev_count {
                break;
            }
            history.push(next);
            if history.len() > n + 1 {
                unreachable!("refinement must stabilize within n rounds");
            }
        }

        Refinement { history, mode }
    }

    /// The stable classes, indexed by node.
    pub fn classes(&self) -> &[u32] {
        self.history.last().expect("history is non-empty")
    }

    /// The classes after `k` rounds, if `k` does not exceed the
    /// stabilization depth (the partition no longer changes past it).
    pub fn classes_at(&self, k: usize) -> Option<&[u32]> {
        self.history.get(k).map(Vec::as_slice)
    }

    /// The classes after `k` rounds for any `k`, clamping past stability.
    pub fn classes_at_clamped(&self, k: usize) -> &[u32] {
        let k = k.min(self.history.len() - 1);
        &self.history[k]
    }

    /// Number of stable classes (`|V_∞|` — the size of the paper's
    /// infinite view graph).
    pub fn class_count(&self) -> usize {
        class_count_of(self.classes())
    }

    /// Number of refinement rounds until stability.
    ///
    /// Norris' theorem (paper, Theorem 3) corresponds to the bound
    /// `stabilization_depth() ≤ n - 1`.
    pub fn stabilization_depth(&self) -> usize {
        self.history.len() - 1
    }

    /// `true` iff every node is alone in its class — i.e. all depth-∞
    /// views are distinct (Lemma 4: the graph is prime).
    pub fn is_discrete(&self) -> bool {
        self.class_count() == self.history[0].len()
    }

    /// The mode this refinement was computed under.
    pub fn mode(&self) -> ViewMode {
        self.mode
    }

    /// The stable partition as explicit groups of nodes, ordered by
    /// canonical class id.
    pub fn partition(&self) -> Vec<Vec<NodeId>> {
        partition_of(self.classes(), self.class_count())
    }

    /// The per-round class history of a node — a lexicographic sort key
    /// that totally orders nodes with distinct views in an
    /// isomorphism-invariant way (the canonical order of Section 2.1).
    pub fn history_key(&self, v: NodeId) -> Vec<u32> {
        self.history.iter().map(|round| round[v.index()]).collect()
    }

    /// `true` iff `u` and `v` have equal depth-`(k+1)` local views.
    pub fn view_equal_at(&self, u: NodeId, v: NodeId, k: usize) -> bool {
        let classes = self.classes_at_clamped(k);
        classes[u.index()] == classes[v.index()]
    }

    /// Approximate retained memory — `history` entries only. Compared
    /// against [`BoundedRefinement::retained_bytes`] by E21's RSS proxy.
    pub fn retained_bytes(&self) -> usize {
        self.history.iter().map(|round| round.capacity() * std::mem::size_of::<u32>()).sum()
    }
}

fn partition_of(classes: &[u32], count: usize) -> Vec<Vec<NodeId>> {
    let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); count];
    for (v, &c) in classes.iter().enumerate() {
        groups[c as usize].push(NodeId::new(v));
    }
    groups
}

/// Color refinement with bounded memory: identical classes, class count,
/// and stabilization depth as [`Refinement::compute`], retaining only the
/// last two rounds (the stable partition and its predecessor) instead of
/// the whole `O(n·rounds)` history.
///
/// This is the fix for the `Refinement` memory blow-up: on a uniform
/// path, full history is `Θ(n²/2)` integers; this is `2n`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BoundedRefinement {
    /// The round before stability (equals `stable` when depth is 0).
    penultimate: Vec<u32>,
    /// The stable partition — canonical ids, as in [`Refinement`].
    stable: Vec<u32>,
    depth: usize,
    mode: ViewMode,
}

impl BoundedRefinement {
    /// Runs refinement on `g` until stability, keeping two rounds.
    pub fn compute<L: Label>(g: &LabeledGraph<L>, mode: ViewMode) -> Self {
        let n = g.node_count();
        let mut stable = initial_label_classes(g);
        let mut penultimate = stable.clone();
        let mut depth = 0usize;
        loop {
            let prev_count = class_count_of(&stable);
            let keys = round_keys(g, &stable, mode, 0, n);
            let next = assign_dense_classes(&keys);
            if class_count_of(&next) == prev_count {
                break;
            }
            penultimate = std::mem::replace(&mut stable, next);
            depth += 1;
            if depth > n {
                unreachable!("refinement must stabilize within n rounds");
            }
        }
        BoundedRefinement { penultimate, stable, depth, mode }
    }

    /// The stable classes, indexed by node — equal to
    /// [`Refinement::classes`].
    pub fn classes(&self) -> &[u32] {
        &self.stable
    }

    /// The round-`(depth-1)` classes (the stable partition itself at
    /// depth 0) — the "last two rounds" the bounded mode retains.
    pub fn penultimate_classes(&self) -> &[u32] {
        &self.penultimate
    }

    /// Number of stable classes.
    pub fn class_count(&self) -> usize {
        class_count_of(&self.stable)
    }

    /// Rounds until stability — equal to
    /// [`Refinement::stabilization_depth`].
    pub fn stabilization_depth(&self) -> usize {
        self.depth
    }

    /// `true` iff all views are distinct (the graph is prime).
    pub fn is_discrete(&self) -> bool {
        self.class_count() == self.stable.len()
    }

    /// The mode this refinement was computed under.
    pub fn mode(&self) -> ViewMode {
        self.mode
    }

    /// The stable partition as explicit groups, ordered by class id.
    pub fn partition(&self) -> Vec<Vec<NodeId>> {
        partition_of(&self.stable, self.class_count())
    }

    /// Approximate retained memory — two rounds, regardless of depth.
    pub fn retained_bytes(&self) -> usize {
        (self.penultimate.capacity() + self.stable.capacity()) * std::mem::size_of::<u32>()
    }
}

/// Counters describing what the incremental engine actually did — the
/// evidence that updates are incremental rather than silent rebuilds.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EngineStats {
    /// Full from-scratch (re)builds: the initial one, plus one per
    /// non-monotone or topology-changing update.
    pub rebuilds: u64,
    /// Updates served incrementally from the retained stable partition.
    pub incremental_updates: u64,
    /// Worklist rounds executed (across all builds and updates).
    pub rounds: u64,
    /// Classes split by the worklist.
    pub classes_split: u64,
    /// Dirty classes examined that turned out not to split.
    pub classes_clean: u64,
}

/// Incremental color refinement.
///
/// Built once from a labeled graph, the engine retains the stable
/// partition. When the instance's labels evolve *monotonically* — every
/// new label class is contained in an old one, as happens each `A_*`
/// phase when nodes append output/tape bits to their labels — an
/// [`update`](RefinementEngine::update) seeds the worklist with the meet
/// of the old stable partition and the new label partition and re-refines
/// only classes whose neighborhood multiset changed, instead of
/// restarting from round 0.
///
/// **Exactness.** The stable partition of refinement from an initial
/// partition `P` is the coarsest equitable partition refining `P`.
/// When new labels refine old labels, the from-scratch stable partition
/// `S'` refines the old stable partition `S` (it is equitable and refines
/// the old labels), hence refines `meet(S, new labels)` — and the
/// coarsest equitable partition refining that meet is `S'` again. So the
/// incremental fixpoint *is* the from-scratch partition. Canonical ids
/// and the stabilization depth are then recovered exactly by replaying
/// the round trajectory on the class quotient (every round's classes are
/// constant on final classes, so per-class replay reproduces the
/// per-node dense ranks), at `O(classes · degree)` per round. When the
/// monotonicity precondition fails — or the topology changed — the
/// engine detects it and falls back to a full rebuild, so results are
/// *always* exact; [`stats`](RefinementEngine::stats) says which path
/// ran.
///
/// Determinism: the dirty set is a `BTreeSet` (sorted iteration), splits
/// are processed in ascending class id, and fresh internal ids are
/// assigned in sorted key order — the anonet-lint determinism rule
/// watches this module.
#[derive(Clone, Debug)]
pub struct RefinementEngine {
    mode: ViewMode,
    n: usize,
    /// Port-ordered `(neighbor, reverse port)` per node, captured at
    /// build time and used to detect topology changes on update.
    adj: Vec<Vec<(u32, u32)>>,
    /// Current canonical label classes (round 0 of the last instance).
    label_class: Vec<u32>,
    /// Internal (non-canonical, split-stable) class ids per node.
    class_of: Vec<u32>,
    /// Members per internal class, each sorted ascending.
    members: Vec<Vec<u32>>,
    /// Canonical class ids per node — equals `Refinement::classes()`.
    canonical: Vec<u32>,
    depth: usize,
    stats: EngineStats,
}

impl RefinementEngine {
    /// Builds the engine from scratch on `g`.
    pub fn new<L: Label>(g: &LabeledGraph<L>, mode: ViewMode) -> Self {
        let n = g.node_count();
        let adj = capture_adjacency(g, mode);
        let label_class = initial_label_classes(g);
        let mut engine = RefinementEngine {
            mode,
            n,
            adj,
            label_class: label_class.clone(),
            class_of: Vec::new(),
            members: Vec::new(),
            canonical: Vec::new(),
            depth: 0,
            stats: EngineStats::default(),
        };
        engine.rebuild_from_labels(&label_class);
        engine
    }

    /// Refreshes the engine against the same graph with (possibly)
    /// changed labels. Incremental when the new labels refine the old
    /// ones and the topology is unchanged; otherwise an exact full
    /// rebuild. Either way the results match `Refinement::compute` on the
    /// new instance.
    pub fn update<L: Label>(&mut self, g: &LabeledGraph<L>) {
        let new_labels = initial_label_classes(g);
        let same_topology = self.n == g.node_count() && adjacency_matches(g, self.mode, &self.adj);
        if !same_topology {
            self.n = g.node_count();
            self.adj = capture_adjacency(g, self.mode);
            self.label_class = new_labels.clone();
            self.rebuild_from_labels(&new_labels);
            return;
        }
        if !refines(&new_labels, &self.label_class) {
            self.label_class = new_labels.clone();
            self.rebuild_from_labels(&new_labels);
            return;
        }

        // Monotone path: meet(old stable, new labels), then worklist.
        self.stats.incremental_updates += 1;
        self.label_class = new_labels.clone();
        let seed_dirty = self.split_by_partition(&new_labels);
        self.run_worklist(seed_dirty);
        self.renumber();
    }

    /// The stable classes with canonical ids, indexed by node — equal to
    /// [`Refinement::classes`] on the current instance.
    pub fn classes(&self) -> &[u32] {
        &self.canonical
    }

    /// Number of stable classes.
    pub fn class_count(&self) -> usize {
        self.members.len()
    }

    /// Rounds until stability — equal to
    /// [`Refinement::stabilization_depth`] on the current instance.
    pub fn stabilization_depth(&self) -> usize {
        self.depth
    }

    /// `true` iff all views are distinct.
    pub fn is_discrete(&self) -> bool {
        self.class_count() == self.n
    }

    /// The view mode the engine refines under.
    pub fn mode(&self) -> ViewMode {
        self.mode
    }

    /// The stable partition as explicit groups, ordered by canonical id.
    pub fn partition(&self) -> Vec<Vec<NodeId>> {
        partition_of(&self.canonical, self.class_count())
    }

    /// What the engine has done so far (rebuilds vs incremental updates).
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Approximate retained memory of the incremental state.
    pub fn retained_bytes(&self) -> usize {
        let u32s = self.label_class.capacity()
            + self.class_of.capacity()
            + self.canonical.capacity()
            + self.members.iter().map(Vec::capacity).sum::<usize>();
        let pairs: usize = self.adj.iter().map(Vec::capacity).sum();
        u32s * std::mem::size_of::<u32>() + pairs * std::mem::size_of::<(u32, u32)>()
    }

    // ---- internals ------------------------------------------------------

    fn rebuild_from_labels(&mut self, labels: &[u32]) {
        self.stats.rebuilds += 1;
        let count = labels.iter().copied().max().map(|m| m as usize + 1).unwrap_or(0);
        self.class_of = labels.to_vec();
        self.members = vec![Vec::new(); count];
        for (v, &c) in labels.iter().enumerate() {
            self.members[c as usize].push(v as u32);
        }
        let all: BTreeSet<u32> = (0..count as u32).collect();
        self.run_worklist(all);
        self.renumber();
    }

    /// Splits every class whose members disagree on the given node
    /// partition (the meet step of a monotone update). Returns the
    /// classes that must be re-examined.
    fn split_by_partition(&mut self, part: &[u32]) -> BTreeSet<u32> {
        let mut affected = BTreeSet::new();
        for c in 0..self.members.len() as u32 {
            let members = &self.members[c as usize];
            if members.len() <= 1 {
                self.stats.classes_clean += 1;
                continue;
            }
            let mut groups: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
            for &v in members {
                groups.entry(part[v as usize]).or_default().push(v);
            }
            self.apply_groups(c, groups.into_values().collect(), &mut affected);
        }
        affected
    }

    /// Splits the given dirty classes by their members' current
    /// neighborhood keys (the exact [`round_keys`] tail: `(class, rev)`
    /// pairs, order-normalized for [`ViewMode::Portless`]). Returns the
    /// classes to re-examine next round.
    fn split_dirty(&mut self, dirty: &BTreeSet<u32>) -> BTreeSet<u32> {
        let mut affected = BTreeSet::new();
        for &c in dirty {
            let members = &self.members[c as usize];
            if members.len() <= 1 {
                self.stats.classes_clean += 1;
                continue;
            }
            // Exact keys, grouped through a sorted map: deterministic,
            // ordered by the true lexicographic key order (the same order
            // `assign_dense_classes` uses for the key tail at fixed
            // previous class — members of one class share that prefix).
            let mut groups: BTreeMap<Vec<u64>, Vec<u32>> = BTreeMap::new();
            for &v in members {
                let mut key: Vec<u64> = self.adj[v as usize]
                    .iter()
                    .map(|&(u, rev)| ((self.class_of[u as usize] as u64) << 32) | rev as u64)
                    .collect();
                if self.mode == ViewMode::Portless {
                    key.sort_unstable();
                }
                groups.entry(key).or_default().push(v);
            }
            self.apply_groups(c, groups.into_values().collect(), &mut affected);
        }
        affected
    }

    /// Installs a class's key-groups: one group ⇒ clean; several ⇒ the
    /// first keeps id `c`, the rest get fresh ids in key order, and every
    /// class adjacent to the split class joins `affected`. Members stay
    /// ascending within groups (insertion order was ascending).
    fn apply_groups(&mut self, c: u32, groups: Vec<Vec<u32>>, affected: &mut BTreeSet<u32>) {
        if groups.len() <= 1 {
            self.stats.classes_clean += 1;
            return;
        }
        self.stats.classes_split += groups.len() as u64 - 1;
        let mut it = groups.into_iter();
        let first = it.next().unwrap_or_default();
        self.members[c as usize] = first;
        let first_fresh = self.members.len();
        for part in it {
            let fresh = self.members.len() as u32;
            for &v in &part {
                self.class_of[v as usize] = fresh;
            }
            self.members.push(part);
        }
        // Neighbors of the old class c (= neighbors of all its parts) may
        // split next round: their keys referenced c, whose meaning changed.
        for part_id in std::iter::once(c).chain((first_fresh..self.members.len()).map(|i| i as u32))
        {
            for m in 0..self.members[part_id as usize].len() {
                let v = self.members[part_id as usize][m];
                for a in 0..self.adj[v as usize].len() {
                    let u = self.adj[v as usize][a].0;
                    affected.insert(self.class_of[u as usize]);
                }
            }
        }
    }

    fn run_worklist(&mut self, mut dirty: BTreeSet<u32>) {
        while !dirty.is_empty() {
            self.stats.rounds += 1;
            let sweep = std::mem::take(&mut dirty);
            dirty = self.split_dirty(&sweep);
        }
    }

    /// Recovers the exact canonical ids and stabilization depth of
    /// `Refinement::compute` by replaying the round trajectory on the
    /// class quotient: per round, each class's key is its previous round
    /// id plus its (port-ordered or sorted) neighbor-class ids — constant
    /// across the class's members by equitability — and dense ranks over
    /// class keys equal dense ranks over node keys because every round's
    /// partition is coarser than the stable one.
    fn renumber(&mut self) {
        let c = self.members.len();
        if c == 0 {
            self.canonical = Vec::new();
            self.depth = 0;
            return;
        }
        // Quotient structure: representative's neighbor (class, rev) list.
        let qadj: Vec<Vec<(u32, u32)>> = self
            .members
            .iter()
            .map(|m| {
                let rep = m[0];
                self.adj[rep as usize]
                    .iter()
                    .map(|&(u, rev)| (self.class_of[u as usize], rev))
                    .collect()
            })
            .collect();
        // Round 0 over classes: the representative's label class. Dense
        // over classes iff dense over nodes — both are the same id set.
        let mut cur: Vec<u32> =
            self.members.iter().map(|m| self.label_class[m[0] as usize]).collect();
        let mut depth = 0usize;
        loop {
            let prev_count = class_count_of(&cur);
            if prev_count == c {
                break; // discrete over classes ⇒ stable
            }
            let keys: Vec<RoundKey> = qadj
                .iter()
                .enumerate()
                .map(|(i, nbrs)| {
                    let mut mapped: Vec<(u32, u32)> =
                        nbrs.iter().map(|&(qc, rev)| (cur[qc as usize], rev)).collect();
                    if self.mode == ViewMode::Portless {
                        mapped.sort_unstable();
                    }
                    (cur[i], mapped)
                })
                .collect();
            let next = assign_dense_classes(&keys);
            if class_count_of(&next) == prev_count {
                break;
            }
            cur = next;
            depth += 1;
        }
        self.depth = depth;
        self.canonical = self.class_of.iter().map(|&ic| cur[ic as usize]).collect();
    }
}

fn capture_adjacency<L: Label>(g: &LabeledGraph<L>, mode: ViewMode) -> Vec<Vec<(u32, u32)>> {
    let graph = g.graph();
    graph
        .nodes()
        .map(|v| {
            graph
                .neighbors(v)
                .iter()
                .enumerate()
                .map(|(p, &u)| {
                    let rev = match mode {
                        ViewMode::Portless => 0,
                        ViewMode::PortAware => {
                            graph.reverse_port(v, anonet_graph::Port::new(p)).index() as u32
                        }
                    };
                    (u.index() as u32, rev)
                })
                .collect()
        })
        .collect()
}

fn adjacency_matches<L: Label>(
    g: &LabeledGraph<L>,
    mode: ViewMode,
    adj: &[Vec<(u32, u32)>],
) -> bool {
    let graph = g.graph();
    if graph.node_count() != adj.len() {
        return false;
    }
    graph.nodes().all(|v| {
        let stored = &adj[v.index()];
        let nbrs = graph.neighbors(v);
        nbrs.len() == stored.len()
            && nbrs.iter().enumerate().all(|(p, &u)| {
                let rev = match mode {
                    ViewMode::Portless => 0,
                    ViewMode::PortAware => {
                        graph.reverse_port(v, anonet_graph::Port::new(p)).index() as u32
                    }
                };
                stored[p] == (u.index() as u32, rev)
            })
    })
}

/// `true` iff partition `fine` refines partition `coarse`: nodes sharing
/// a `fine` class always share their `coarse` class.
fn refines(fine: &[u32], coarse: &[u32]) -> bool {
    if fine.len() != coarse.len() {
        return false;
    }
    let mut image: BTreeMap<u32, u32> = BTreeMap::new();
    fine.iter().zip(coarse.iter()).all(|(&f, &c)| *image.entry(f).or_insert(c) == c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view_tree::ViewTree;
    use anonet_graph::{generators, Graph};

    fn fig1_c6() -> LabeledGraph<u32> {
        generators::cycle(6).unwrap().with_labels(vec![1u32, 2, 3, 1, 2, 3]).unwrap()
    }

    #[test]
    fn colored_c6_has_three_classes() {
        let r = Refinement::compute(&fig1_c6(), ViewMode::Portless);
        assert_eq!(r.class_count(), 3);
        let c = r.classes();
        assert_eq!(c[0], c[3]);
        assert_eq!(c[1], c[4]);
        assert_eq!(c[2], c[5]);
        assert_ne!(c[0], c[1]);
    }

    #[test]
    fn uniform_cycle_is_one_class() {
        let g = generators::cycle(7).unwrap().with_uniform_label(0u8);
        let r = Refinement::compute(&g, ViewMode::Portless);
        assert_eq!(r.class_count(), 1);
        assert!(!r.is_discrete());
    }

    #[test]
    fn port_numberings_can_break_symmetry() {
        // The cycle generator wires port 0 toward the successor for every
        // node except the last, whose ports are swapped — a genuinely
        // asymmetric port numbering. Portless views cannot see it; the
        // port-aware refinement splits the single class.
        let g = generators::cycle(7).unwrap().with_uniform_label(0u8);
        let portless = Refinement::compute(&g, ViewMode::Portless);
        let aware = Refinement::compute(&g, ViewMode::PortAware);
        assert_eq!(portless.class_count(), 1);
        assert!(aware.class_count() > 1);
    }

    #[test]
    fn path_refinement_is_discrete_up_to_mirror() {
        // P5 with uniform labels: refinement distinguishes by distance to
        // the ends, but the mirror symmetry survives: classes {0,4},{1,3},{2}.
        let g = generators::path(5).unwrap().with_uniform_label(0u8);
        let r = Refinement::compute(&g, ViewMode::Portless);
        assert_eq!(r.class_count(), 3);
        let c = r.classes();
        assert_eq!(c[0], c[4]);
        assert_eq!(c[1], c[3]);
        assert_ne!(c[0], c[1]);
        assert_ne!(c[1], c[2]);
    }

    #[test]
    fn refinement_matches_explicit_views() {
        // classes_at(k) must equal depth-(k+1) view equality, node pair by
        // node pair — the standard refinement/view correspondence.
        let graphs = vec![
            fig1_c6(),
            generators::path(6).unwrap().with_uniform_label(0u32),
            generators::petersen().with_degree_labels(),
            Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 1)])
                .unwrap()
                .with_uniform_label(0u32),
        ];
        for g in graphs {
            let r = Refinement::compute(&g, ViewMode::Portless);
            let n = g.node_count();
            for k in 0..=r.stabilization_depth() {
                let views: Vec<ViewTree<u32>> = (0..n)
                    .map(|v| ViewTree::build(&g, NodeId::new(v), k + 1).unwrap().canonicalize())
                    .collect();
                for u in 0..n {
                    for v in 0..n {
                        let by_view = views[u].encoded() == views[v].encoded();
                        let by_ref = r.view_equal_at(NodeId::new(u), NodeId::new(v), k);
                        assert_eq!(by_view, by_ref, "mismatch at depth {k} for nodes {u},{v}");
                    }
                }
            }
        }
    }

    #[test]
    fn stabilization_within_n_minus_one() {
        let graphs: Vec<LabeledGraph<u32>> = vec![
            generators::path(9).unwrap().with_uniform_label(0u32),
            generators::cycle(8).unwrap().with_uniform_label(0u32),
            generators::petersen().with_uniform_label(0u32),
            fig1_c6(),
        ];
        for g in graphs {
            for mode in [ViewMode::Portless, ViewMode::PortAware] {
                let r = Refinement::compute(&g, mode);
                assert!(
                    r.stabilization_depth() <= g.node_count().saturating_sub(1),
                    "depth {} exceeds n-1",
                    r.stabilization_depth()
                );
            }
        }
    }

    #[test]
    fn port_aware_is_at_least_as_fine() {
        for g in [fig1_c6(), generators::petersen().with_uniform_label(0u32)] {
            let portless = Refinement::compute(&g, ViewMode::Portless);
            let aware = Refinement::compute(&g, ViewMode::PortAware);
            assert!(aware.class_count() >= portless.class_count());
            // Same port-aware class ⇒ same portless class.
            let n = g.node_count();
            for u in 0..n {
                for v in 0..n {
                    if aware.classes()[u] == aware.classes()[v] {
                        assert_eq!(portless.classes()[u], portless.classes()[v]);
                    }
                }
            }
        }
    }

    #[test]
    fn history_keys_are_distinct_exactly_when_discrete() {
        let ids = generators::petersen().with_labels((0..10u32).collect()).unwrap();
        let r = Refinement::compute(&ids, ViewMode::Portless);
        assert!(r.is_discrete());
        let mut keys: Vec<Vec<u32>> = (0..10).map(|v| r.history_key(NodeId::new(v))).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 10);
    }

    #[test]
    fn canonical_ids_are_isomorphism_invariant() {
        // The same colored cycle presented with rotated node names must
        // yield the same multiset of (class id, label) pairs.
        let a = fig1_c6();
        let rot = generators::cycle(6).unwrap().with_labels(vec![3u32, 1, 2, 3, 1, 2]).unwrap();
        let ra = Refinement::compute(&a, ViewMode::Portless);
        let rb = Refinement::compute(&rot, ViewMode::Portless);
        let mut pa: Vec<(u32, u32)> =
            (0..6).map(|v| (ra.classes()[v], *a.label(NodeId::new(v)))).collect();
        let mut pb: Vec<(u32, u32)> =
            (0..6).map(|v| (rb.classes()[v], *rot.label(NodeId::new(v)))).collect();
        pa.sort();
        pb.sort();
        assert_eq!(pa, pb);
    }

    #[test]
    fn partition_groups_match_classes() {
        let g = generators::path(5).unwrap().with_uniform_label(0u8);
        let r = Refinement::compute(&g, ViewMode::Portless);
        let groups = r.partition();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), 5);
        // Mirror pairs share a group.
        let find = |v: usize| groups.iter().position(|grp| grp.contains(&NodeId::new(v))).unwrap();
        assert_eq!(find(0), find(4));
        assert_eq!(find(1), find(3));
        assert_ne!(find(0), find(2));
    }

    #[test]
    fn classes_at_and_clamping() {
        let g = generators::path(6).unwrap().with_uniform_label(0u8);
        let r = Refinement::compute(&g, ViewMode::Portless);
        assert!(r.classes_at(0).is_some());
        assert!(r.classes_at(r.stabilization_depth()).is_some());
        assert!(r.classes_at(r.stabilization_depth() + 1).is_none());
        assert_eq!(r.classes_at_clamped(999), r.classes());
    }

    // ---- bounded mode ---------------------------------------------------

    fn test_graphs() -> Vec<LabeledGraph<u32>> {
        vec![
            fig1_c6(),
            generators::path(9).unwrap().with_uniform_label(0u32),
            generators::cycle(8).unwrap().with_uniform_label(0u32),
            generators::petersen().with_uniform_label(0u32),
            generators::petersen().with_labels((0..10u32).collect()).unwrap(),
            generators::grid(3, 4, false).unwrap().with_uniform_label(0u32),
            generators::hypercube(3).unwrap().with_uniform_label(0u32),
            Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 1)])
                .unwrap()
                .with_uniform_label(0u32),
        ]
    }

    #[test]
    fn bounded_matches_full_exactly() {
        for g in test_graphs() {
            for mode in [ViewMode::Portless, ViewMode::PortAware] {
                let full = Refinement::compute(&g, mode);
                let bounded = BoundedRefinement::compute(&g, mode);
                assert_eq!(bounded.classes(), full.classes(), "{mode:?}");
                assert_eq!(bounded.class_count(), full.class_count());
                assert_eq!(bounded.stabilization_depth(), full.stabilization_depth());
                assert_eq!(bounded.is_discrete(), full.is_discrete());
                assert_eq!(bounded.partition(), full.partition());
                assert_eq!(
                    bounded.penultimate_classes(),
                    full.classes_at_clamped(full.stabilization_depth().saturating_sub(1))
                );
            }
        }
    }

    #[test]
    fn bounded_memory_beats_full_history_on_paths() {
        // The uniform path is the O(n·rounds) worst case the bounded mode
        // exists for.
        let g = generators::path(40).unwrap().with_uniform_label(0u32);
        let full = Refinement::compute(&g, ViewMode::Portless);
        let bounded = BoundedRefinement::compute(&g, ViewMode::Portless);
        assert!(full.stabilization_depth() > 10);
        assert!(bounded.retained_bytes() < full.retained_bytes() / 4);
    }

    // ---- incremental engine ---------------------------------------------

    #[test]
    fn engine_matches_from_scratch_on_build() {
        for g in test_graphs() {
            for mode in [ViewMode::Portless, ViewMode::PortAware] {
                let reference = Refinement::compute(&g, mode);
                let engine = RefinementEngine::new(&g, mode);
                assert_eq!(engine.classes(), reference.classes(), "{mode:?}");
                assert_eq!(engine.class_count(), reference.class_count());
                assert_eq!(engine.stabilization_depth(), reference.stabilization_depth());
                assert_eq!(engine.is_discrete(), reference.is_discrete());
                assert_eq!(engine.partition(), reference.partition());
                assert_eq!(engine.stats().rebuilds, 1);
            }
        }
    }

    /// Monotone label evolution: append a phase-dependent value derived
    /// from the current class to each node's label (a (old, extra) pair
    /// label always refines the old partition).
    fn mutate_monotone(g: &LabeledGraph<u32>, extra: &[u32]) -> LabeledGraph<(u32, u32)> {
        let labels: Vec<(u32, u32)> =
            g.graph().nodes().map(|v| (*g.label(v), extra[v.index()])).collect();
        g.graph().clone().with_labels(labels).unwrap()
    }

    #[test]
    fn engine_incremental_updates_match_from_scratch() {
        for g in test_graphs() {
            for mode in [ViewMode::Portless, ViewMode::PortAware] {
                let mut engine = RefinementEngine::new(&g, mode);
                // Phase 1: no-op refinement (same extra everywhere).
                let g1 = mutate_monotone(&g, &vec![0u32; g.node_count()]);
                engine.update(&g1);
                let r1 = Refinement::compute(&g1, mode);
                assert_eq!(engine.classes(), r1.classes(), "{mode:?} phase 1");
                assert_eq!(engine.stabilization_depth(), r1.stabilization_depth());

                // Phase 2: split by current class parity — still monotone
                // (extra is a function of the stable class, which refines
                // labels… and labels refine labels).
                let extra: Vec<u32> = engine.classes().iter().map(|&c| c % 2).collect();
                let g2 = mutate_monotone(&g, &extra);
                engine.update(&g2);
                let r2 = Refinement::compute(&g2, mode);
                assert_eq!(engine.classes(), r2.classes(), "{mode:?} phase 2");
                assert_eq!(engine.class_count(), r2.class_count());
                assert_eq!(engine.stabilization_depth(), r2.stabilization_depth());

                // Phase 3: genuinely split one class by node index — the
                // label (old, v%3) still refines (old, …) of phase 2? No:
                // phase 2's extra differs from phase 3's, and (label, a)
                // vs (label, b) partitions need not nest — the engine must
                // detect non-monotone steps and still be exact.
                let extra3: Vec<u32> = (0..g.node_count() as u32).map(|v| v % 3).collect();
                let g3 = mutate_monotone(&g, &extra3);
                engine.update(&g3);
                let r3 = Refinement::compute(&g3, mode);
                assert_eq!(engine.classes(), r3.classes(), "{mode:?} phase 3");
                assert_eq!(engine.stabilization_depth(), r3.stabilization_depth());
                assert!(engine.stats().incremental_updates >= 1, "{mode:?}");
            }
        }
    }

    #[test]
    fn engine_detects_topology_change_and_rebuilds() {
        let g = fig1_c6();
        let mut engine = RefinementEngine::new(&g, ViewMode::Portless);
        let rebuilds_before = engine.stats().rebuilds;
        let h = generators::cycle(9)
            .unwrap()
            .with_labels((0..9).map(|i| (i % 3) as u32 + 1).collect::<Vec<_>>())
            .unwrap();
        engine.update(&h);
        let reference = Refinement::compute(&h, ViewMode::Portless);
        assert_eq!(engine.classes(), reference.classes());
        assert_eq!(engine.stats().rebuilds, rebuilds_before + 1);
    }

    #[test]
    fn engine_is_deterministic_across_runs() {
        // Same instance sequence ⇒ identical classes, 100 runs — the
        // BTreeSet dirty set and sorted splits are what make this hold.
        let g = generators::petersen().with_uniform_label(0u32);
        let reference = {
            let mut e = RefinementEngine::new(&g, ViewMode::PortAware);
            let extra: Vec<u32> = e.classes().iter().map(|&c| c % 2).collect();
            e.update(&mutate_monotone(&g, &extra));
            e.classes().to_vec()
        };
        for run in 0..100 {
            let mut e = RefinementEngine::new(&g, ViewMode::PortAware);
            let extra: Vec<u32> = e.classes().iter().map(|&c| c % 2).collect();
            e.update(&mutate_monotone(&g, &extra));
            assert_eq!(e.classes(), reference.as_slice(), "run {run} diverged");
        }
    }

    #[test]
    fn refines_predicate() {
        assert!(refines(&[0, 1, 2, 3], &[0, 0, 1, 1]));
        assert!(refines(&[0, 0, 1, 1], &[0, 0, 1, 1]));
        assert!(!refines(&[0, 0, 1, 1], &[0, 1, 2, 3]));
        assert!(!refines(&[0, 1], &[0, 0, 1]));
    }

    #[test]
    fn round_keys_chunks_concatenate_to_the_full_vector() {
        let g = generators::petersen().with_degree_labels();
        for mode in [ViewMode::Portless, ViewMode::PortAware] {
            let prev = initial_label_classes(&g);
            let full = round_keys(&g, &prev, mode, 0, g.node_count());
            let mut chunked = Vec::new();
            for lo in (0..g.node_count()).step_by(3) {
                let hi = (lo + 3).min(g.node_count());
                chunked.extend(round_keys(&g, &prev, mode, lo, hi));
            }
            assert_eq!(full, chunked, "{mode:?}");
        }
    }
}
