//! Color refinement: the linear-time equivalent of view equality.
//!
//! Classic fact (implicit in the paper's use of Norris [39]): two nodes
//! have equal depth-`(k+1)` local views iff `k` rounds of color refinement
//! place them in the same class. Refinement partitions only ever get
//! finer, so they stabilize after at most `n - 1` rounds — the
//! finite-depth phenomenon that Section 3 of the paper exploits.

use std::collections::BTreeMap;

use anonet_graph::{Label, LabeledGraph, NodeId};

/// Which notion of view equivalence to compute.
///
/// See the crate docs for the full discussion; in short:
/// [`ViewMode::Portless`] is the paper's literal definition, while
/// [`ViewMode::PortAware`] additionally distinguishes port structure and
/// is what lifting arbitrary port-sensitive algorithms requires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ViewMode {
    /// Views record node labels only (paper, Section 1.1). This is the
    /// paper-exact notion and the default: the derandomization machinery
    /// pairs it with *port-oblivious* algorithms, which by the paper's
    /// Section 1.3 remark lose no power on 2-hop colored graphs.
    #[default]
    Portless,
    /// Views additionally record, for each port `p`, the port through
    /// which the neighbor reached via `p` sees this node. Strictly finer
    /// than [`ViewMode::Portless`] (port numberings can break symmetry);
    /// used by the experiments that study the effect of ports.
    PortAware,
}

/// The result of running color refinement to stability.
///
/// Class identifiers are *canonical*: they are assigned by sorting the
/// refinement keys, so isomorphic labeled graphs receive identical class
/// structures — which is what lets every node of an anonymous network
/// compute the same quotient independently.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Refinement {
    /// `history[k][v]` = class of node `v` after `k` rounds (`k = 0` is
    /// the initial label/degree partition). The last entry is stable.
    history: Vec<Vec<u32>>,
    mode: ViewMode,
}

impl Refinement {
    /// Runs refinement on `g` until the partition stabilizes.
    pub fn compute<L: Label>(g: &LabeledGraph<L>, mode: ViewMode) -> Self {
        let graph = g.graph();
        let n = graph.node_count();

        // Round 0: labels only — so that `classes_at(k)` matches equality
        // of depth-(k+1) views exactly. (Degrees are picked up at round 1
        // as the neighbor-multiset size; the paper's convention that
        // labels include degrees makes the two initial partitions coincide
        // on its instances anyway.)
        let keys0: Vec<Vec<u8>> = graph.nodes().map(|v| g.label(v).encoded()).collect();
        let mut history = vec![assign_classes(&keys0)];

        loop {
            let prev = history.last().expect("history is non-empty");
            let prev_count = class_count_of(prev);
            let keys: Vec<(u32, Vec<(u32, u32)>)> = graph
                .nodes()
                .map(|v| {
                    let mut nbrs: Vec<(u32, u32)> = graph
                        .neighbors(v)
                        .iter()
                        .enumerate()
                        .map(|(p, &u)| {
                            let rev = match mode {
                                ViewMode::Portless => 0,
                                ViewMode::PortAware => {
                                    graph.reverse_port(v, anonet_graph::Port::new(p)).index() as u32
                                }
                            };
                            (prev[u.index()], rev)
                        })
                        .collect();
                    if mode == ViewMode::Portless {
                        // Neighbor multiset, not port vector.
                        nbrs.sort_unstable();
                    }
                    (prev[v.index()], nbrs)
                })
                .collect();
            let next = assign_classes(&keys);
            let next_count = class_count_of(&next);
            // Refinement only splits classes, so equal counts ⇒ equal
            // partitions ⇒ stable.
            if next_count == prev_count {
                break;
            }
            history.push(next);
            if history.len() > n + 1 {
                unreachable!("refinement must stabilize within n rounds");
            }
        }

        Refinement { history, mode }
    }

    /// The stable classes, indexed by node.
    pub fn classes(&self) -> &[u32] {
        self.history.last().expect("history is non-empty")
    }

    /// The classes after `k` rounds, if `k` does not exceed the
    /// stabilization depth (the partition no longer changes past it).
    pub fn classes_at(&self, k: usize) -> Option<&[u32]> {
        self.history.get(k).map(Vec::as_slice)
    }

    /// The classes after `k` rounds for any `k`, clamping past stability.
    pub fn classes_at_clamped(&self, k: usize) -> &[u32] {
        let k = k.min(self.history.len() - 1);
        &self.history[k]
    }

    /// Number of stable classes (`|V_∞|` — the size of the paper's
    /// infinite view graph).
    pub fn class_count(&self) -> usize {
        class_count_of(self.classes())
    }

    /// Number of refinement rounds until stability.
    ///
    /// Norris' theorem (paper, Theorem 3) corresponds to the bound
    /// `stabilization_depth() ≤ n - 1`.
    pub fn stabilization_depth(&self) -> usize {
        self.history.len() - 1
    }

    /// `true` iff every node is alone in its class — i.e. all depth-∞
    /// views are distinct (Lemma 4: the graph is prime).
    pub fn is_discrete(&self) -> bool {
        self.class_count() == self.history[0].len()
    }

    /// The mode this refinement was computed under.
    pub fn mode(&self) -> ViewMode {
        self.mode
    }

    /// The stable partition as explicit groups of nodes, ordered by
    /// canonical class id.
    pub fn partition(&self) -> Vec<Vec<NodeId>> {
        let classes = self.classes();
        let count = self.class_count();
        let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); count];
        for (v, &c) in classes.iter().enumerate() {
            groups[c as usize].push(NodeId::new(v));
        }
        groups
    }

    /// The per-round class history of a node — a lexicographic sort key
    /// that totally orders nodes with distinct views in an
    /// isomorphism-invariant way (the canonical order of Section 2.1).
    pub fn history_key(&self, v: NodeId) -> Vec<u32> {
        self.history.iter().map(|round| round[v.index()]).collect()
    }

    /// `true` iff `u` and `v` have equal depth-`(k+1)` local views.
    pub fn view_equal_at(&self, u: NodeId, v: NodeId, k: usize) -> bool {
        let classes = self.classes_at_clamped(k);
        classes[u.index()] == classes[v.index()]
    }
}

/// Sorts keys and assigns dense canonical ids by sorted order.
fn assign_classes<K: Ord>(keys: &[K]) -> Vec<u32> {
    let mut sorted: Vec<&K> = keys.iter().collect();
    sorted.sort();
    sorted.dedup();
    let index: BTreeMap<&K, u32> =
        sorted.into_iter().enumerate().map(|(i, k)| (k, i as u32)).collect();
    keys.iter().map(|k| index[k]).collect()
}

fn class_count_of(classes: &[u32]) -> usize {
    let mut seen: Vec<u32> = classes.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view_tree::ViewTree;
    use anonet_graph::{generators, Graph};

    fn fig1_c6() -> LabeledGraph<u32> {
        generators::cycle(6).unwrap().with_labels(vec![1u32, 2, 3, 1, 2, 3]).unwrap()
    }

    #[test]
    fn colored_c6_has_three_classes() {
        let r = Refinement::compute(&fig1_c6(), ViewMode::Portless);
        assert_eq!(r.class_count(), 3);
        let c = r.classes();
        assert_eq!(c[0], c[3]);
        assert_eq!(c[1], c[4]);
        assert_eq!(c[2], c[5]);
        assert_ne!(c[0], c[1]);
    }

    #[test]
    fn uniform_cycle_is_one_class() {
        let g = generators::cycle(7).unwrap().with_uniform_label(0u8);
        let r = Refinement::compute(&g, ViewMode::Portless);
        assert_eq!(r.class_count(), 1);
        assert!(!r.is_discrete());
    }

    #[test]
    fn port_numberings_can_break_symmetry() {
        // The cycle generator wires port 0 toward the successor for every
        // node except the last, whose ports are swapped — a genuinely
        // asymmetric port numbering. Portless views cannot see it; the
        // port-aware refinement splits the single class.
        let g = generators::cycle(7).unwrap().with_uniform_label(0u8);
        let portless = Refinement::compute(&g, ViewMode::Portless);
        let aware = Refinement::compute(&g, ViewMode::PortAware);
        assert_eq!(portless.class_count(), 1);
        assert!(aware.class_count() > 1);
    }

    #[test]
    fn path_refinement_is_discrete_up_to_mirror() {
        // P5 with uniform labels: refinement distinguishes by distance to
        // the ends, but the mirror symmetry survives: classes {0,4},{1,3},{2}.
        let g = generators::path(5).unwrap().with_uniform_label(0u8);
        let r = Refinement::compute(&g, ViewMode::Portless);
        assert_eq!(r.class_count(), 3);
        let c = r.classes();
        assert_eq!(c[0], c[4]);
        assert_eq!(c[1], c[3]);
        assert_ne!(c[0], c[1]);
        assert_ne!(c[1], c[2]);
    }

    #[test]
    fn refinement_matches_explicit_views() {
        // classes_at(k) must equal depth-(k+1) view equality, node pair by
        // node pair — the standard refinement/view correspondence.
        let graphs = vec![
            fig1_c6(),
            generators::path(6).unwrap().with_uniform_label(0u32),
            generators::petersen().with_degree_labels(),
            Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 1)])
                .unwrap()
                .with_uniform_label(0u32),
        ];
        for g in graphs {
            let r = Refinement::compute(&g, ViewMode::Portless);
            let n = g.node_count();
            for k in 0..=r.stabilization_depth() {
                let views: Vec<ViewTree<u32>> = (0..n)
                    .map(|v| ViewTree::build(&g, NodeId::new(v), k + 1).unwrap().canonicalize())
                    .collect();
                for u in 0..n {
                    for v in 0..n {
                        let by_view = views[u].encoded() == views[v].encoded();
                        let by_ref = r.view_equal_at(NodeId::new(u), NodeId::new(v), k);
                        assert_eq!(by_view, by_ref, "mismatch at depth {k} for nodes {u},{v}");
                    }
                }
            }
        }
    }

    #[test]
    fn stabilization_within_n_minus_one() {
        let graphs: Vec<LabeledGraph<u32>> = vec![
            generators::path(9).unwrap().with_uniform_label(0u32),
            generators::cycle(8).unwrap().with_uniform_label(0u32),
            generators::petersen().with_uniform_label(0u32),
            fig1_c6(),
        ];
        for g in graphs {
            for mode in [ViewMode::Portless, ViewMode::PortAware] {
                let r = Refinement::compute(&g, mode);
                assert!(
                    r.stabilization_depth() <= g.node_count().saturating_sub(1),
                    "depth {} exceeds n-1",
                    r.stabilization_depth()
                );
            }
        }
    }

    #[test]
    fn port_aware_is_at_least_as_fine() {
        for g in [fig1_c6(), generators::petersen().with_uniform_label(0u32)] {
            let portless = Refinement::compute(&g, ViewMode::Portless);
            let aware = Refinement::compute(&g, ViewMode::PortAware);
            assert!(aware.class_count() >= portless.class_count());
            // Same port-aware class ⇒ same portless class.
            let n = g.node_count();
            for u in 0..n {
                for v in 0..n {
                    if aware.classes()[u] == aware.classes()[v] {
                        assert_eq!(portless.classes()[u], portless.classes()[v]);
                    }
                }
            }
        }
    }

    #[test]
    fn history_keys_are_distinct_exactly_when_discrete() {
        let ids = generators::petersen().with_labels((0..10u32).collect()).unwrap();
        let r = Refinement::compute(&ids, ViewMode::Portless);
        assert!(r.is_discrete());
        let mut keys: Vec<Vec<u32>> = (0..10).map(|v| r.history_key(NodeId::new(v))).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 10);
    }

    #[test]
    fn canonical_ids_are_isomorphism_invariant() {
        // The same colored cycle presented with rotated node names must
        // yield the same multiset of (class id, label) pairs.
        let a = fig1_c6();
        let rot = generators::cycle(6).unwrap().with_labels(vec![3u32, 1, 2, 3, 1, 2]).unwrap();
        let ra = Refinement::compute(&a, ViewMode::Portless);
        let rb = Refinement::compute(&rot, ViewMode::Portless);
        let mut pa: Vec<(u32, u32)> =
            (0..6).map(|v| (ra.classes()[v], *a.label(NodeId::new(v)))).collect();
        let mut pb: Vec<(u32, u32)> =
            (0..6).map(|v| (rb.classes()[v], *rot.label(NodeId::new(v)))).collect();
        pa.sort();
        pb.sort();
        assert_eq!(pa, pb);
    }

    #[test]
    fn partition_groups_match_classes() {
        let g = generators::path(5).unwrap().with_uniform_label(0u8);
        let r = Refinement::compute(&g, ViewMode::Portless);
        let groups = r.partition();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), 5);
        // Mirror pairs share a group.
        let find = |v: usize| groups.iter().position(|grp| grp.contains(&NodeId::new(v))).unwrap();
        assert_eq!(find(0), find(4));
        assert_eq!(find(1), find(3));
        assert_ne!(find(0), find(2));
    }

    #[test]
    fn classes_at_and_clamping() {
        let g = generators::path(6).unwrap().with_uniform_label(0u8);
        let r = Refinement::compute(&g, ViewMode::Portless);
        assert!(r.classes_at(0).is_some());
        assert!(r.classes_at(r.stabilization_depth()).is_some());
        assert!(r.classes_at(r.stabilization_depth() + 1).is_none());
        assert_eq!(r.classes_at_clamped(999), r.classes());
    }
}
