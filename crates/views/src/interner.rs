//! Hash-consing of canonical byte encodings.
//!
//! The `A_*` engine compares canonical view encodings constantly: the C2
//! condition asks whether a node's depth-`p` view occurs in a candidate,
//! the candidate-pool memo is keyed by the encoded label universe, and
//! `Update-Graph` tie-breaks by the `s(G_*)` encoding. All of those are
//! equality tests on `Vec<u8>` values that repeat massively across nodes
//! and phases. The [`Interner`] maps each distinct encoding to a dense
//! [`Sym`] so repeated comparisons and hash lookups cost one `u32`
//! instead of a byte-vector walk, and each distinct encoding is stored
//! exactly once.
//!
//! **Symbols are identity, not order.** [`Sym`]s are handed out in
//! first-seen order, so `Sym` comparisons must never replace the paper's
//! canonical byte orders (`s(G_*)`, the `Update-Graph` total order) — use
//! [`Interner::resolve`] and compare bytes when an *ordering* is needed.
//! Equality of symbols, however, is exactly equality of encodings.

use std::collections::HashMap;

/// An interned encoding: a dense handle that is equal iff the underlying
/// byte encodings are equal (within one [`Interner`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Sym(u32);

impl Sym {
    /// The dense index of this symbol (first-seen order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A hash-consing table for canonical byte encodings.
///
/// # Example
///
/// ```
/// use anonet_views::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern(b"view-encoding");
/// let b = interner.intern(b"view-encoding");
/// assert_eq!(a, b); // one symbol per distinct encoding
/// assert_eq!(interner.resolve(a), b"view-encoding");
/// assert_eq!(interner.sym(b"unseen"), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Interner {
    lookup: HashMap<Box<[u8]>, Sym>,
    entries: Vec<Box<[u8]>>,
    hits: u64,
    misses: u64,
    stored_bytes: usize,
}

impl Interner {
    /// An empty table.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `bytes`, returning its (new or existing) symbol.
    pub fn intern(&mut self, bytes: &[u8]) -> Sym {
        if let Some(&sym) = self.lookup.get(bytes) {
            self.hits += 1;
            return sym;
        }
        self.misses += 1;
        self.stored_bytes += bytes.len();
        let sym = Sym(u32::try_from(self.entries.len()).expect("fewer than 2^32 encodings"));
        let boxed: Box<[u8]> = bytes.into();
        self.entries.push(boxed.clone());
        self.lookup.insert(boxed, sym);
        sym
    }

    /// Looks up the symbol of an already-interned encoding, without
    /// interning. Read-only, so safe to share across worker threads.
    pub fn sym(&self, bytes: &[u8]) -> Option<Sym> {
        self.lookup.get(bytes).copied()
    }

    /// The bytes behind a symbol.
    ///
    /// # Panics
    ///
    /// Panics if `sym` came from a different interner (index out of range).
    pub fn resolve(&self, sym: Sym) -> &[u8] {
        &self.entries[sym.index()]
    }

    /// Number of distinct encodings interned.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime count of [`intern`](Interner::intern) calls that found an
    /// existing encoding — the `views.interner.hit` obs counter.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime count of [`intern`](Interner::intern) calls that inserted
    /// a new encoding — the `views.interner.miss` obs counter.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total payload bytes of the distinct encodings stored (excludes map
    /// overhead; used as a footprint proxy).
    pub fn stored_bytes(&self) -> usize {
        self.stored_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = Interner::new();
        let a = t.intern(b"alpha");
        let b = t.intern(b"beta");
        let a2 = t.intern(b"alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = Interner::new();
        let syms: Vec<Sym> = (0u8..50).map(|i| t.intern(&[i, i, i])).collect();
        for (i, sym) in syms.iter().enumerate() {
            assert_eq!(t.resolve(*sym), &[i as u8, i as u8, i as u8]);
        }
    }

    #[test]
    fn sym_lookup_does_not_intern() {
        let mut t = Interner::new();
        assert!(t.is_empty());
        assert_eq!(t.sym(b"x"), None);
        assert!(t.is_empty());
        let s = t.intern(b"x");
        assert_eq!(t.sym(b"x"), Some(s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn hit_miss_counters_track_lookups() {
        let mut t = Interner::new();
        assert_eq!((t.hits(), t.misses()), (0, 0));
        t.intern(b"alpha");
        t.intern(b"alpha");
        t.intern(b"beta");
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
        assert_eq!(t.stored_bytes(), "alpha".len() + "beta".len());
        // `sym` is read-only and must not move the counters.
        let _ = t.sym(b"alpha");
        assert_eq!((t.hits(), t.misses()), (1, 2));
    }

    #[test]
    fn empty_encoding_is_a_valid_entry() {
        let mut t = Interner::new();
        let e = t.intern(b"");
        assert_eq!(t.resolve(e), b"");
        assert_eq!(t.intern(b""), e);
    }
}
