//! Property-based tests for the views machinery on random graphs.

use anonet_graph::{coloring, generators, iso, lift, Graph, NodeId};
use anonet_views::{canonical_order, quotient, FoldedView, Refinement, ViewMode, ViewTree};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn random_graph(seed: u64, n: usize, flavor: u8) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match flavor % 3 {
        0 => generators::gnp_connected(n, 0.35, &mut rng).expect("valid"),
        1 => generators::random_tree(n, &mut rng).expect("valid"),
        _ => generators::cycle(n.max(3)).expect("valid"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Folded views built directly equal folded views of explicit trees,
    /// and unfold back to the canonical tree.
    #[test]
    fn folded_views_roundtrip(seed in 0u64..5000, n in 2usize..10, flavor in 0u8..3, d in 1usize..5) {
        let g = random_graph(seed, n, flavor).with_degree_labels();
        for v in g.graph().nodes() {
            let direct = FoldedView::build(&g, v, d).expect("valid depth");
            let tree = ViewTree::build(&g, v, d).expect("small enough");
            prop_assert_eq!(&direct, &FoldedView::from_view_tree(&tree));
            prop_assert!(direct.unfold().view_eq(&tree));
            prop_assert_eq!(direct.unfolded_size(), tree.size() as u128);
        }
    }

    /// Folded-view equality is exactly view equality (refinement classes).
    #[test]
    fn folded_equality_matches_refinement(seed in 0u64..5000, n in 2usize..10, flavor in 0u8..3) {
        let g = random_graph(seed, n, flavor).with_uniform_label(0u32);
        let n = g.node_count();
        let d = n + 1; // deep enough to separate everything separable
        let views: Vec<FoldedView<u32>> = g
            .graph()
            .nodes()
            .map(|v| FoldedView::build(&g, v, d).expect("valid"))
            .collect();
        let r = Refinement::compute(&g, ViewMode::Portless);
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(
                    views[u] == views[v],
                    r.classes()[u] == r.classes()[v],
                    "nodes {} vs {}", u, v
                );
            }
        }
    }

    /// Closed-view quotient reconstruction agrees with the direct quotient
    /// on greedily colored random graphs.
    #[test]
    fn closed_reconstruction_matches_quotient(seed in 0u64..3000, n in 2usize..8, flavor in 0u8..3) {
        let g = random_graph(seed, n, flavor);
        let colored = coloring::greedy_two_hop_coloring(&g);
        let nn = g.node_count();
        let direct = quotient(&colored, ViewMode::Portless).expect("2-hop colored");
        let folded = FoldedView::build_closed(&colored, NodeId::new(0), 2 * nn + 2)
            .expect("valid");
        let (reconstructed, own) = folded.quotient_at_level(nn).expect("reconstructible");
        prop_assert!(iso::are_isomorphic(&reconstructed, direct.graph()));
        prop_assert_eq!(reconstructed.label(own), colored.label(NodeId::new(0)));
    }

    /// The canonical order of a prime graph is invariant under relabeling
    /// of node identifiers (tested via lifts' fibers: the quotient of any
    /// lift presentation is the same canonical object).
    #[test]
    fn canonical_order_is_presentation_invariant(seed in 0u64..3000, m in 2usize..4) {
        let base = generators::cycle(5).expect("valid");
        let colored = coloring::greedy_two_hop_coloring(&base);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let Ok(l) = lift::random_connected_lift(&base, m, 100, &mut rng) else {
            return Ok(()); // unlucky voltages; skip
        };
        let product = l.lift_labels(colored.labels()).expect("labels fit");
        let q = quotient(&product, ViewMode::Portless).expect("2-hop colored");
        let order = canonical_order(q.graph(), ViewMode::Portless).expect("prime");
        // The sequence of labels along the canonical order must equal the
        // base's canonical label sequence.
        let base_order = canonical_order(&colored, ViewMode::Portless).expect("prime");
        let got: Vec<u32> = order.iter().map(|&c| *q.graph().label(c)).collect();
        let expect: Vec<u32> = base_order.iter().map(|&v| *colored.label(v)).collect();
        prop_assert_eq!(got, expect);
    }

    /// Quotienting twice is idempotent on colored random graphs.
    #[test]
    fn quotient_is_idempotent(seed in 0u64..5000, n in 2usize..10, flavor in 0u8..3) {
        let g = random_graph(seed, n, flavor);
        let colored = coloring::greedy_two_hop_coloring(&g);
        let q = quotient(&colored, ViewMode::Portless).expect("2-hop colored");
        let qq = quotient(q.graph(), ViewMode::Portless).expect("still 2-hop colored");
        prop_assert!(qq.is_trivial());
        prop_assert!(iso::are_isomorphic(qq.graph(), q.graph()));
    }
}
