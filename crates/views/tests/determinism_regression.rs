//! Regression: canonical encodings are byte-stable across repeated runs.
//!
//! The deterministic stage promises bit-for-bit reproducible encodings
//! (the batch cache keys on them, the conformance oracles compare them
//! byte-for-byte). A `HashMap`/`HashSet` iterated on the way to an
//! encoding would break this silently: `RandomState` reseeds per map, so
//! the bug only shows up as cross-construction (or cross-process)
//! divergence. These tests recompute every encoding-bearing artifact 100
//! times from scratch — fresh containers, fresh hashers each run — and
//! assert byte identity, which is exactly the observable the
//! `anonet-lint` determinism rule exists to protect.

use anonet_graph::{generators, iso, LabeledGraph};
use anonet_views::{canonical_encoding, quotient, ViewMode};

const RUNS: usize = 100;

fn colored_cycle(n: usize) -> LabeledGraph<u32> {
    let labels: Vec<u32> = (0..n).map(|i| (i % 3) as u32 + 1).collect();
    generators::cycle(n).unwrap().with_labels(labels).unwrap()
}

#[test]
fn quotient_encodings_are_stable_across_runs() {
    for mode in [ViewMode::Portless, ViewMode::PortAware] {
        for g in [colored_cycle(6), colored_cycle(9), colored_cycle(12)] {
            let reference = {
                let q = quotient(&g, mode).unwrap();
                canonical_encoding(q.graph(), mode).unwrap()
            };
            assert!(!reference.is_empty());
            for run in 0..RUNS {
                let q = quotient(&g, mode).unwrap();
                let enc = canonical_encoding(q.graph(), mode).unwrap();
                assert_eq!(enc, reference, "run {run} diverged ({mode:?})");
            }
        }
    }
}

#[test]
fn prime_graph_encodings_are_stable_across_runs() {
    // A path with all-distinct labels is prime: every node sees a
    // different view, so it is its own quotient.
    let g = generators::path(6).unwrap().with_labels(vec![1u32, 2, 3, 4, 5, 6]).unwrap();
    let reference = canonical_encoding(&g, ViewMode::Portless).unwrap();
    for run in 0..RUNS {
        let enc = canonical_encoding(&g, ViewMode::Portless).unwrap();
        assert_eq!(enc, reference, "run {run} diverged");
    }
}

#[test]
fn isomorphism_search_is_stable_across_runs() {
    // iso's joint refinement used hash-keyed class maps; the mapping it
    // finds (and whether it finds one) must not depend on hasher state.
    let a = colored_cycle(9);
    let b = colored_cycle(9);
    let reference = iso::find_isomorphism(&a, &b).expect("isomorphic");
    for run in 0..RUNS {
        let m = iso::find_isomorphism(&a, &b).expect("isomorphic");
        assert_eq!(m, reference, "run {run} found a different mapping");
    }
}
