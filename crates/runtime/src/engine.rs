//! The synchronous execution engine.

use anonet_graph::{Label, LabeledGraph, NodeId, Port};

use crate::adversary::{FairScheduler, RoundAdversary};
use crate::algorithm::{Actions, Algorithm, Inbox};
use crate::error::RuntimeError;
use crate::randomness::RandomSource;
use crate::Result;

/// Configuration for a single execution.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Hard cap on the number of rounds; executions that reach it stop
    /// with [`Status::MaxRounds`]. Defaults to `100_000`.
    pub max_rounds: usize,
    /// Record the full per-round state history (round 0 = initial states).
    /// Needed by the lifting-lemma experiments; costs memory. Defaults to
    /// `false`.
    pub record_states: bool,
    /// Record a structured [`Event`](crate::Event) log (sends, outputs,
    /// halts). Defaults to `false`.
    pub record_events: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { max_rounds: 100_000, record_states: false, record_events: false }
    }
}

impl ExecConfig {
    /// Config with a custom round cap.
    pub fn with_max_rounds(max_rounds: usize) -> Self {
        ExecConfig { max_rounds, ..Default::default() }
    }

    /// Enables state recording.
    pub fn recording(mut self) -> Self {
        self.record_states = true;
        self
    }

    /// Enables event tracing.
    pub fn tracing(mut self) -> Self {
        self.record_events = true;
        self
    }
}

/// How an execution ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// Every node halted.
    Completed,
    /// Some active node's [`RandomSource`] ran out of bits — the
    /// prescribed simulation ended (paper: a `t`-round simulation).
    OutOfBits,
    /// The round cap was reached with active nodes remaining.
    MaxRounds,
}

/// The result of executing an [`Algorithm`] on a network.
#[derive(Clone, Debug)]
pub struct Execution<A: Algorithm> {
    outputs: Vec<Option<A::Output>>,
    output_rounds: Vec<Option<usize>>,
    halt_rounds: Vec<Option<usize>>,
    final_states: Vec<A::State>,
    state_history: Option<Vec<Vec<A::State>>>,
    rounds: usize,
    messages_sent: usize,
    message_bytes: usize,
    messages_per_round: Vec<usize>,
    active_per_round: Vec<usize>,
    events: Option<Vec<crate::Event>>,
    bits_consumed: usize,
    status: Status,
}

impl<A: Algorithm> Execution<A> {
    /// The irrevocable outputs, indexed by node (`None` = never produced).
    pub fn outputs(&self) -> &[Option<A::Output>] {
        &self.outputs
    }

    /// The output of one node.
    pub fn output(&self, v: NodeId) -> Option<&A::Output> {
        self.outputs[v.index()].as_ref()
    }

    /// `true` iff **every** node produced an output — the paper's notion
    /// of a *successful* simulation (Section 2.2).
    pub fn is_successful(&self) -> bool {
        self.outputs.iter().all(Option::is_some)
    }

    /// Unwraps the outputs of a successful execution.
    ///
    /// # Panics
    ///
    /// Panics if some node produced no output; check
    /// [`Execution::is_successful`] first.
    pub fn outputs_unwrapped(&self) -> Vec<A::Output> {
        // anonet-lint: allow(panic-hygiene, reason = "documented panicking accessor; callers check is_successful first")
        self.outputs.iter().map(|o| o.clone().expect("execution was not successful")).collect()
    }

    /// The round in which each node wrote its output.
    pub fn output_rounds(&self) -> &[Option<usize>] {
        &self.output_rounds
    }

    /// The round in which each node halted.
    pub fn halt_rounds(&self) -> &[Option<usize>] {
        &self.halt_rounds
    }

    /// Final per-node states.
    pub fn final_states(&self) -> &[A::State] {
        &self.final_states
    }

    /// Per-node states after `round` (0 = initial), if recording was on.
    pub fn states_at(&self, round: usize) -> Option<&[A::State]> {
        self.state_history.as_ref()?.get(round).map(Vec::as_slice)
    }

    /// Number of rounds executed.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Total messages delivered across the execution.
    pub fn messages_sent(&self) -> usize {
        self.messages_sent
    }

    /// Total bytes of message payload delivered (in-memory size of
    /// `A::Message` per delivered message).
    pub fn message_bytes(&self) -> usize {
        self.message_bytes
    }

    /// Messages delivered in each round (index 0 = round 1).
    pub fn messages_per_round(&self) -> &[usize] {
        &self.messages_per_round
    }

    /// Number of non-halted nodes at the start of each round.
    pub fn active_per_round(&self) -> &[usize] {
        &self.active_per_round
    }

    /// The structured event log, if tracing was enabled.
    pub fn events(&self) -> Option<&[crate::Event]> {
        self.events.as_deref()
    }

    /// Renders the traced events as an ASCII timeline (empty without
    /// tracing).
    pub fn timeline(&self) -> String {
        self.events.as_deref().map(crate::trace::timeline_text).unwrap_or_default()
    }

    /// Total random bits consumed (one per active node per round).
    pub fn bits_consumed(&self) -> usize {
        self.bits_consumed
    }

    /// How the execution ended.
    pub fn status(&self) -> Status {
        self.status
    }
}

/// Executes `alg` on the network `net` (a connected labeled graph whose
/// labels are the nodes' inputs), drawing bits from `source`.
///
/// # Errors
///
/// * [`RuntimeError::InvalidNetwork`] if the graph is not connected (the
///   model only defines executions on connected graphs);
/// * [`RuntimeError::OutputConflict`] if a node overwrites its output.
pub fn run<A, S>(
    alg: &A,
    net: &LabeledGraph<A::Input>,
    source: &mut S,
    config: &ExecConfig,
) -> Result<Execution<A>>
where
    A: Algorithm,
    A::Input: Label,
    S: RandomSource + ?Sized,
{
    run_with_adversary(alg, net, source, config, &mut FairScheduler)
}

/// [`run`] under an explicit [`RoundAdversary`] controlling the within-round
/// sweep orders (delivery and wakeup). Rounds are simultaneous in the
/// model, so outputs must not depend on the adversary — divergence under
/// different adversaries is an engine or algorithm bug.
///
/// # Errors
///
/// As [`run`], plus [`RuntimeError::InvalidSchedule`] if the adversary
/// emits something that is not a permutation of the node set.
pub fn run_with_adversary<A, S>(
    alg: &A,
    net: &LabeledGraph<A::Input>,
    source: &mut S,
    config: &ExecConfig,
    adversary: &mut (impl RoundAdversary + ?Sized),
) -> Result<Execution<A>>
where
    A: Algorithm,
    A::Input: Label,
    S: RandomSource + ?Sized,
{
    let g = net.graph();
    if !g.is_connected() {
        return Err(RuntimeError::InvalidNetwork { reason: "graph is not connected".into() });
    }
    let n = g.node_count();

    let mut states: Vec<A::State> =
        g.nodes().map(|v| alg.init(net.label(v), g.degree(v))).collect();
    let mut outputs: Vec<Option<A::Output>> = vec![None; n];
    let mut output_rounds: Vec<Option<usize>> = vec![None; n];
    let mut halt_rounds: Vec<Option<usize>> = vec![None; n];
    let mut halted = vec![false; n];
    let mut history: Option<Vec<Vec<A::State>>> =
        config.record_states.then(|| vec![states.clone()]);

    let mut events: Option<Vec<crate::Event>> = config.record_events.then(Vec::new);
    let message_size = std::mem::size_of::<A::Message>();
    let mut messages_sent = 0usize;
    let mut message_bytes = 0usize;
    let mut messages_per_round: Vec<usize> = Vec::new();
    let mut active_per_round: Vec<usize> = Vec::new();
    let mut bits_consumed = 0usize;
    let mut rounds = 0usize;

    let status = loop {
        if halted.iter().all(|&h| h) {
            break Status::Completed;
        }
        let round = rounds + 1;
        if round > config.max_rounds {
            break Status::MaxRounds;
        }

        // Draw this round's bits for active nodes first: if any tape is
        // exhausted, the prescribed simulation ends *before* this round.
        let mut bits: Vec<bool> = vec![false; n];
        let mut exhausted = false;
        for v in g.nodes() {
            if halted[v.index()] {
                continue;
            }
            match source.bit(v, round) {
                Some(b) => bits[v.index()] = b,
                None => {
                    exhausted = true;
                    break;
                }
            }
        }
        if exhausted {
            break Status::OutOfBits;
        }

        active_per_round.push(halted.iter().filter(|&&h| !h).count());
        let round_message_base = messages_sent;

        // Compose and deliver messages, in the adversary's delivery order.
        // Every node composes against the same pre-round state snapshot and
        // each inbox slot is written by exactly one (sender, port) pair, so
        // the order cannot change the delivered messages — the adversary
        // only gets to prove that.
        let mut inboxes: Vec<Vec<Option<A::Message>>> =
            g.nodes().map(|v| vec![None; g.degree(v)]).collect();
        for v in checked_order(adversary.compose_order(n, round), n, round, "compose")? {
            if halted[v.index()] {
                continue;
            }
            for p in 0..g.degree(v) {
                let port = Port::new(p);
                if let Some(msg) = alg.compose(&states[v.index()], port) {
                    let u = g.endpoint(v, port);
                    let q = g.reverse_port(v, port);
                    messages_sent += 1;
                    message_bytes += message_size;
                    if let Some(ev) = events.as_mut() {
                        ev.push(crate::Event::MessageSent {
                            round,
                            from: v,
                            port,
                            bytes: message_size,
                        });
                    }
                    inboxes[u.index()][q.index()] = Some(msg);
                }
            }
        }

        // Step states, in the adversary's wakeup order. Each node writes
        // only its own slots, so this order is equally inert.
        for v in checked_order(adversary.step_order(n, round), n, round, "step")? {
            if halted[v.index()] {
                continue;
            }
            bits_consumed += 1;
            if let Some(ev) = events.as_mut() {
                ev.push(crate::Event::BitsDrawn { round, node: v, count: 1 });
            }
            let inbox = Inbox::new(std::mem::take(&mut inboxes[v.index()]));
            let mut actions: Actions<A::Output> = Actions::new(outputs[v.index()].clone());
            let state = states[v.index()].clone();
            states[v.index()] = alg.step(state, round, &inbox, bits[v.index()], &mut actions);
            if actions.output_written {
                return Err(RuntimeError::OutputConflict { node: v, round });
            }
            if outputs[v.index()].is_none() && actions.output.is_some() {
                output_rounds[v.index()] = Some(round);
                if let Some(ev) = events.as_mut() {
                    ev.push(crate::Event::OutputSet { round, node: v });
                }
            }
            outputs[v.index()] = actions.output;
            if actions.halt {
                halted[v.index()] = true;
                halt_rounds[v.index()] = Some(round);
                if let Some(ev) = events.as_mut() {
                    ev.push(crate::Event::Halted { round, node: v });
                }
            }
        }

        rounds = round;
        messages_per_round.push(messages_sent - round_message_base);
        if let Some(h) = history.as_mut() {
            h.push(states.clone());
        }
    };

    // The bit/compose loops may have started a round that ended early
    // (OutOfBits); trim the per-round profiles to completed rounds.
    active_per_round.truncate(rounds);
    Ok(Execution {
        outputs,
        output_rounds,
        halt_rounds,
        final_states: states,
        state_history: history,
        rounds,
        messages_sent,
        message_bytes,
        messages_per_round,
        active_per_round,
        events,
        bits_consumed,
        status,
    })
}

/// Validates an adversary-supplied order as a permutation of `0..n`.
fn checked_order(order: Vec<usize>, n: usize, round: usize, phase: &str) -> Result<Vec<NodeId>> {
    let mut seen = vec![false; n];
    if order.len() != n || order.iter().any(|&v| v >= n || std::mem::replace(&mut seen[v], true)) {
        return Err(RuntimeError::InvalidSchedule {
            round,
            reason: format!("{phase} order is not a permutation of 0..{n}: {order:?}"),
        });
    }
    Ok(order.into_iter().map(NodeId::new).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::BitAssignment;
    use crate::randomness::{RngSource, TapeSource, ZeroSource};
    use anonet_graph::{generators, BitString, Graph};

    /// Each node floods the maximum input label it has seen; after `k`
    /// rounds it outputs that maximum and halts.
    #[derive(Debug)]
    struct FloodMax {
        k: usize,
    }

    impl Algorithm for FloodMax {
        type Input = u32;
        type Message = u32;
        type Output = u32;
        type State = (u32, usize); // (max seen, rounds done)

        fn init(&self, input: &u32, _degree: usize) -> Self::State {
            (*input, 0)
        }

        fn compose(&self, state: &Self::State, _port: Port) -> Option<u32> {
            Some(state.0)
        }

        fn step(
            &self,
            state: Self::State,
            round: usize,
            inbox: &Inbox<u32>,
            _bit: bool,
            actions: &mut Actions<u32>,
        ) -> Self::State {
            let max = inbox.iter().map(|(_, m)| *m).fold(state.0, u32::max);
            if round == self.k {
                actions.output(max);
                actions.halt();
            }
            (max, round)
        }
    }

    /// Outputs the node's first random bit as 0/1, then halts.
    #[derive(Debug)]
    struct FirstBit;

    impl Algorithm for FirstBit {
        type Input = u32;
        type Message = ();
        type Output = u8;
        type State = ();

        fn init(&self, _input: &u32, _degree: usize) {}
        fn compose(&self, _state: &(), _port: Port) -> Option<()> {
            None
        }
        fn step(
            &self,
            _state: (),
            _round: usize,
            _inbox: &Inbox<()>,
            bit: bool,
            actions: &mut Actions<u8>,
        ) {
            actions.output(u8::from(bit));
            actions.halt();
        }
    }

    #[test]
    fn flood_max_reaches_everyone_when_k_covers_diameter() {
        let g = generators::path(6).unwrap();
        let net = g.with_labels(vec![3u32, 1, 4, 1, 5, 9]).unwrap();
        let exec = run(&FloodMax { k: 5 }, &net, &mut ZeroSource, &ExecConfig::default()).unwrap();
        assert_eq!(exec.status(), Status::Completed);
        assert!(exec.is_successful());
        assert_eq!(exec.outputs_unwrapped(), vec![9; 6]);
        assert_eq!(exec.rounds(), 5);
        // 2 endpoints with degree 1, 4 middle nodes with degree 2, 5 rounds.
        assert_eq!(exec.messages_sent(), 5 * (2 + 4 * 2));
        assert_eq!(exec.message_bytes(), 5 * (2 + 4 * 2) * std::mem::size_of::<u32>());
        assert_eq!(exec.bits_consumed(), 30);
    }

    #[test]
    fn flood_max_partial_when_k_too_small() {
        let g = generators::path(6).unwrap();
        let net = g.with_labels(vec![9u32, 1, 1, 1, 1, 1]).unwrap();
        let exec = run(&FloodMax { k: 2 }, &net, &mut ZeroSource, &ExecConfig::default()).unwrap();
        // Node 5 is 5 hops from the 9; after 2 rounds it has only seen 1s.
        assert_eq!(exec.output(NodeId::new(5)), Some(&1));
        assert_eq!(exec.output(NodeId::new(1)), Some(&9));
    }

    #[test]
    fn prescribed_tapes_replay_exactly() {
        let g = generators::cycle(3).unwrap();
        let net = g.with_uniform_label(0u32);
        let tapes =
            vec!["1".parse::<BitString>().unwrap(), "0".parse().unwrap(), "1".parse().unwrap()];
        let mut src = TapeSource::new(BitAssignment::new(tapes));
        let exec = run(&FirstBit, &net, &mut src, &ExecConfig::default()).unwrap();
        assert!(exec.is_successful());
        assert_eq!(exec.outputs_unwrapped(), vec![1, 0, 1]);
    }

    #[test]
    fn exhausted_tape_ends_simulation() {
        let g = generators::cycle(3).unwrap();
        let net = g.with_uniform_label(0u32);
        let mut src = TapeSource::new(BitAssignment::empty(3));
        let exec = run(&FirstBit, &net, &mut src, &ExecConfig::default()).unwrap();
        assert_eq!(exec.status(), Status::OutOfBits);
        assert!(!exec.is_successful());
        assert_eq!(exec.rounds(), 0);
    }

    #[test]
    fn never_halting_hits_round_cap() {
        struct Forever;
        impl Algorithm for Forever {
            type Input = u32;
            type Message = ();
            type Output = ();
            type State = ();
            fn init(&self, _: &u32, _: usize) {}
            fn compose(&self, _: &(), _: Port) -> Option<()> {
                None
            }
            fn step(&self, _: (), _: usize, _: &Inbox<()>, _: bool, _: &mut Actions<()>) {}
        }
        let net = generators::cycle(3).unwrap().with_uniform_label(0u32);
        let exec = run(&Forever, &net, &mut ZeroSource, &ExecConfig::with_max_rounds(17)).unwrap();
        assert_eq!(exec.status(), Status::MaxRounds);
        assert_eq!(exec.rounds(), 17);
    }

    #[test]
    fn output_conflict_is_an_error() {
        #[derive(Debug)]
        struct Flipper;
        impl Algorithm for Flipper {
            type Input = u32;
            type Message = ();
            type Output = usize;
            type State = ();
            fn init(&self, _: &u32, _: usize) {}
            fn compose(&self, _: &(), _: Port) -> Option<()> {
                None
            }
            fn step(
                &self,
                _: (),
                round: usize,
                _: &Inbox<()>,
                _: bool,
                actions: &mut Actions<usize>,
            ) {
                actions.output(round); // different every round
            }
        }
        let net = generators::cycle(3).unwrap().with_uniform_label(0u32);
        let err = run(&Flipper, &net, &mut ZeroSource, &ExecConfig::default()).unwrap_err();
        assert!(matches!(err, RuntimeError::OutputConflict { round: 2, .. }));
    }

    #[test]
    fn disconnected_networks_are_rejected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let net = g.with_uniform_label(0u32);
        let err = run(&FirstBit, &net, &mut ZeroSource, &ExecConfig::default()).unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidNetwork { .. }));
    }

    #[test]
    fn state_history_is_recorded_when_asked() {
        let g = generators::path(3).unwrap();
        let net = g.with_labels(vec![1u32, 2, 3]).unwrap();
        let cfg = ExecConfig::default().recording();
        let exec = run(&FloodMax { k: 2 }, &net, &mut ZeroSource, &cfg).unwrap();
        // Round 0 = initial states.
        assert_eq!(exec.states_at(0).unwrap(), &[(1, 0), (2, 0), (3, 0)]);
        // After round 1 everyone has seen direct neighbors.
        assert_eq!(exec.states_at(1).unwrap(), &[(2, 1), (3, 1), (3, 1)]);
        assert_eq!(exec.states_at(2).unwrap(), &[(3, 2), (3, 2), (3, 2)]);
        assert!(exec.states_at(3).is_none());
        // Without the flag there is no history.
        let exec2 = run(&FloodMax { k: 2 }, &net, &mut ZeroSource, &ExecConfig::default()).unwrap();
        assert!(exec2.states_at(0).is_none());
    }

    #[test]
    fn event_tracing_records_sends_outputs_halts() {
        let g = generators::path(3).unwrap();
        let net = g.with_labels(vec![1u32, 2, 3]).unwrap();
        let cfg = ExecConfig::default().tracing();
        let exec = run(&FloodMax { k: 2 }, &net, &mut ZeroSource, &cfg).unwrap();
        let events = exec.events().unwrap();
        let sends = events.iter().filter(|e| matches!(e, crate::Event::MessageSent { .. })).count();
        assert_eq!(sends, exec.messages_sent());
        let sent_bytes: usize = events
            .iter()
            .filter_map(|e| match e {
                crate::Event::MessageSent { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum();
        assert_eq!(sent_bytes, exec.message_bytes());
        let bits: usize = events
            .iter()
            .filter_map(|e| match e {
                crate::Event::BitsDrawn { count, .. } => Some(*count),
                _ => None,
            })
            .sum();
        assert_eq!(bits, exec.bits_consumed());
        let outputs = events.iter().filter(|e| matches!(e, crate::Event::OutputSet { .. })).count();
        assert_eq!(outputs, 3);
        let timeline = exec.timeline();
        assert!(timeline.contains("round   1:"));
        assert!(timeline.contains("halt:"));
        // Without tracing there is no log and the timeline is empty.
        let plain = run(&FloodMax { k: 2 }, &net, &mut ZeroSource, &ExecConfig::default()).unwrap();
        assert!(plain.events().is_none());
        assert!(plain.timeline().is_empty());
    }

    #[test]
    fn executions_are_reproducible_per_seed() {
        let net = generators::cycle(7).unwrap().with_uniform_label(0u32);
        let e1 = run(&FirstBit, &net, &mut RngSource::seeded(9), &ExecConfig::default()).unwrap();
        let e2 = run(&FirstBit, &net, &mut RngSource::seeded(9), &ExecConfig::default()).unwrap();
        assert_eq!(e1.outputs(), e2.outputs());
    }

    /// Las-Vegas coin: a node outputs (and halts) only in a round where
    /// its bit comes up 1 — under an all-zeros source it stays active
    /// forever.
    #[derive(Clone, Copy, Debug)]
    struct CoinHalt;

    impl Algorithm for CoinHalt {
        type Input = u32;
        type Message = ();
        type Output = usize;
        type State = ();

        fn init(&self, _: &u32, _: usize) {}
        fn compose(&self, _: &(), _: Port) -> Option<()> {
            None
        }
        fn step(
            &self,
            _: (),
            round: usize,
            _: &Inbox<()>,
            bit: bool,
            actions: &mut Actions<usize>,
        ) {
            if bit {
                actions.output(round);
                actions.halt();
            }
        }
    }

    #[test]
    fn round_cap_hits_with_active_las_vegas_nodes() {
        // Negative path for ExecConfig::max_rounds: nodes are still active
        // (not merely non-halted-but-done) when the cap strikes.
        let net = generators::cycle(4).unwrap().with_uniform_label(0u32);
        let exec = run(&CoinHalt, &net, &mut ZeroSource, &ExecConfig::with_max_rounds(23)).unwrap();
        assert_eq!(exec.status(), Status::MaxRounds);
        assert_eq!(exec.rounds(), 23);
        assert!(!exec.is_successful());
        assert!(exec.outputs().iter().all(Option::is_none));
        assert!(exec.halt_rounds().iter().all(Option::is_none));
        assert_eq!(exec.active_per_round().last(), Some(&4));
        // The same algorithm under live randomness completes well within
        // the default cap — the cap, not the algorithm, ended the run above.
        let live = run(&CoinHalt, &net, &mut RngSource::seeded(3), &ExecConfig::default()).unwrap();
        assert_eq!(live.status(), Status::Completed);
    }

    #[test]
    fn outputs_are_invariant_under_adversaries() {
        use crate::adversary::{ReverseScheduler, ShuffledScheduler, SkewedScheduler};
        let g = generators::wheel(7).unwrap();
        let net = g.with_labels((0..7u32).map(|i| i * 3 % 5).collect()).unwrap();
        let tapes = BitAssignment::new(
            (0..7).map(|i| BitString::from_value(i as u64, 8)).collect::<Vec<_>>(),
        );
        let fair = run(
            &FloodMax { k: 4 },
            &net,
            &mut TapeSource::new(tapes.clone()),
            &ExecConfig::default(),
        )
        .unwrap();
        let mut adversaries: Vec<Box<dyn crate::adversary::RoundAdversary>> = vec![
            Box::new(ReverseScheduler),
            Box::new(SkewedScheduler { stride: 2 }),
            Box::new(ShuffledScheduler::new(99)),
        ];
        for adv in &mut adversaries {
            let exec = run_with_adversary(
                &FloodMax { k: 4 },
                &net,
                &mut TapeSource::new(tapes.clone()),
                &ExecConfig::default(),
                adv.as_mut(),
            )
            .unwrap();
            assert_eq!(exec.outputs(), fair.outputs(), "{} diverged", adv.name());
            assert_eq!(exec.rounds(), fair.rounds());
            assert_eq!(exec.messages_sent(), fair.messages_sent());
        }
    }

    #[test]
    fn live_rng_draws_are_schedule_invariant() {
        // RngSource bits depend on call order; the engine draws them in
        // canonical node order regardless of the adversary, so outputs of
        // bit-dependent algorithms stay schedule independent too.
        use crate::adversary::ShuffledScheduler;
        let net = generators::cycle(6).unwrap().with_uniform_label(0u32);
        let fair =
            run(&FirstBit, &net, &mut RngSource::seeded(11), &ExecConfig::default()).unwrap();
        let shuffled = run_with_adversary(
            &FirstBit,
            &net,
            &mut RngSource::seeded(11),
            &ExecConfig::default(),
            &mut ShuffledScheduler::new(5),
        )
        .unwrap();
        assert_eq!(shuffled.outputs(), fair.outputs());
    }

    #[test]
    fn malformed_schedules_are_rejected() {
        struct Bad;
        impl crate::adversary::RoundAdversary for Bad {
            fn step_order(&mut self, n: usize, _round: usize) -> Vec<usize> {
                vec![0; n] // not a permutation
            }
        }
        let net = generators::cycle(3).unwrap().with_uniform_label(0u32);
        let err = run_with_adversary(
            &FloodMax { k: 2 },
            &net,
            &mut ZeroSource,
            &ExecConfig::default(),
            &mut Bad,
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidSchedule { round: 1, .. }));
        assert!(err.to_string().contains("permutation"));
    }

    #[test]
    fn single_node_graph_executes() {
        let g = Graph::builder(1).build().unwrap();
        let net = g.with_uniform_label(5u32);
        let exec = run(&FloodMax { k: 1 }, &net, &mut ZeroSource, &ExecConfig::default()).unwrap();
        assert_eq!(exec.outputs_unwrapped(), vec![5]);
    }
}
