//! Structured execution traces for debugging anonymous algorithms.
//!
//! Enable with [`ExecConfig::tracing`](crate::ExecConfig::tracing); the
//! resulting [`Execution`](crate::Execution) then carries a chronological
//! [`Event`] log — who sent on which port (and how many bytes), who drew
//! random bits, who output, who halted, round by round — plus a compact
//! ASCII timeline renderer. Events carry no message payloads (those are
//! generic); combine with state recording when contents matter.

use anonet_graph::{NodeId, Port};

/// One observable event of an execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Event {
    /// A node sent a message through one of its ports.
    MessageSent {
        /// Round (1-indexed).
        round: usize,
        /// The sender.
        from: NodeId,
        /// The sender's port.
        port: Port,
        /// In-memory size of the message payload, in bytes.
        bytes: usize,
    },
    /// A node drew bits from its random tape.
    BitsDrawn {
        /// Round (1-indexed).
        round: usize,
        /// The node.
        node: NodeId,
        /// Number of bits drawn (the synchronous engine draws one per
        /// active node per round).
        count: usize,
    },
    /// A node wrote its irrevocable output.
    OutputSet {
        /// Round (1-indexed).
        round: usize,
        /// The node.
        node: NodeId,
    },
    /// A node halted.
    Halted {
        /// Round (1-indexed).
        round: usize,
        /// The node.
        node: NodeId,
    },
}

impl Event {
    /// The round the event happened in.
    pub fn round(&self) -> usize {
        match self {
            Event::MessageSent { round, .. }
            | Event::BitsDrawn { round, .. }
            | Event::OutputSet { round, .. }
            | Event::Halted { round, .. } => *round,
        }
    }
}

/// The ASCII timeline rendering behind
/// [`Execution::timeline`](crate::Execution::timeline) (and, via the
/// bridge, `anonet_obs::bridge::timeline`). One line per
/// round: message count, then any outputs and halts. [`Event::BitsDrawn`]
/// events contribute no line of their own.
pub fn timeline_text(events: &[Event]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let last_round = events.iter().map(Event::round).max().unwrap_or(0);
    for r in 1..=last_round {
        let msgs = events
            .iter()
            .filter(|e| matches!(e, Event::MessageSent { round, .. } if *round == r))
            .count();
        let outputs: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                Event::OutputSet { round, node } if *round == r => Some(node.to_string()),
                _ => None,
            })
            .collect();
        let halts: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                Event::Halted { round, node } if *round == r => Some(node.to_string()),
                _ => None,
            })
            .collect();
        let _ = write!(out, "round {r:>3}: {msgs:>4} msgs");
        if !outputs.is_empty() {
            let _ = write!(out, " | out: {}", outputs.join(" "));
        }
        if !halts.is_empty() {
            let _ = write!(out, " | halt: {}", halts.join(" "));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_accessor() {
        let e = Event::OutputSet { round: 4, node: NodeId::new(1) };
        assert_eq!(e.round(), 4);
        let e = Event::MessageSent { round: 2, from: NodeId::new(0), port: Port::new(1), bytes: 4 };
        assert_eq!(e.round(), 2);
        let e = Event::BitsDrawn { round: 7, node: NodeId::new(2), count: 1 };
        assert_eq!(e.round(), 7);
    }

    #[test]
    fn timeline_renders_rounds() {
        let events = vec![
            Event::MessageSent { round: 1, from: NodeId::new(0), port: Port::new(0), bytes: 4 },
            Event::MessageSent { round: 1, from: NodeId::new(1), port: Port::new(0), bytes: 4 },
            Event::BitsDrawn { round: 1, node: NodeId::new(0), count: 1 },
            Event::OutputSet { round: 2, node: NodeId::new(0) },
            Event::Halted { round: 2, node: NodeId::new(0) },
        ];
        let t = timeline_text(&events);
        assert!(t.contains("round   1:    2 msgs"));
        assert!(t.contains("out: v0"));
        assert!(t.contains("halt: v0"));
    }

    #[test]
    fn empty_log_renders_empty() {
        assert!(timeline_text(&[]).is_empty());
    }
}
