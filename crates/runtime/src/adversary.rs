//! Pluggable round adversaries for the synchronous engine.
//!
//! The model's rounds are simultaneous: every active node composes its
//! messages against the *same* state snapshot, and every node steps on its
//! own slot only. The engine's results are therefore independent of the
//! order in which it happens to iterate nodes within a round — and that
//! independence is exactly the synchronizer reduction the Las-Vegas claims
//! lean on. A [`RoundAdversary`] turns the claim into a tripwire: it picks,
//! per round, the order in which the engine sweeps nodes through the
//! compose (delivery) phase and the step (wakeup) phase. Any dependence of
//! outputs on these orders is an engine or algorithm bug, surfaced by
//! running the same seed under different adversaries and comparing.
//!
//! Random bits are *not* under adversary control: the engine draws them in
//! canonical node order at the start of the round, mirroring the paper's
//! "one bit per node per round" normalization (and keeping call-order
//! sensitive sources such as [`RngSource`](crate::RngSource) schedule
//! independent by construction).
//!
//! Worst-case *port* orderings are a property of the network presentation,
//! not the schedule; build them with
//! `anonet_graph::Graph::with_shuffled_ports` and friends.

/// A per-round schedule: in which order the engine visits nodes during the
/// compose (message delivery) and step (state transition) phases.
///
/// Implementations must return a permutation of `0..n`; the engine
/// validates this and fails the execution with
/// [`RuntimeError::InvalidSchedule`](crate::RuntimeError::InvalidSchedule)
/// otherwise. Halted nodes may appear in the order; the engine skips them.
pub trait RoundAdversary {
    /// The order in which nodes compose and deliver their messages in
    /// `round` (1-indexed). Defaults to the fair (identity) order.
    fn compose_order(&mut self, n: usize, round: usize) -> Vec<usize> {
        let _ = round;
        (0..n).collect()
    }

    /// The order in which nodes step (wake up) in `round` (1-indexed).
    /// Defaults to the fair (identity) order.
    fn step_order(&mut self, n: usize, round: usize) -> Vec<usize> {
        let _ = round;
        (0..n).collect()
    }

    /// A short human-readable name for reports and replay encodings.
    fn name(&self) -> &'static str {
        "adversary"
    }
}

/// The fair scheduler: canonical node order in both phases. This is what
/// [`run`](crate::run) uses.
#[derive(Clone, Copy, Debug, Default)]
pub struct FairScheduler;

impl RoundAdversary for FairScheduler {
    fn name(&self) -> &'static str {
        "fair"
    }
}

/// Sweeps nodes in reverse order in both phases — the cheapest
/// non-identity delay-reordering.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReverseScheduler;

impl RoundAdversary for ReverseScheduler {
    fn compose_order(&mut self, n: usize, _round: usize) -> Vec<usize> {
        (0..n).rev().collect()
    }

    fn step_order(&mut self, n: usize, _round: usize) -> Vec<usize> {
        (0..n).rev().collect()
    }

    fn name(&self) -> &'static str {
        "reverse"
    }
}

/// Skewed wakeups: each round starts its sweep at a different node
/// (rotation by `round · stride`), so no node is consistently first or
/// last. Models a synchronizer that releases nodes in drifting order.
#[derive(Clone, Copy, Debug)]
pub struct SkewedScheduler {
    /// Rotation advance per round.
    pub stride: usize,
}

impl Default for SkewedScheduler {
    fn default() -> Self {
        SkewedScheduler { stride: 1 }
    }
}

impl RoundAdversary for SkewedScheduler {
    fn compose_order(&mut self, n: usize, round: usize) -> Vec<usize> {
        rotate(n, round.wrapping_mul(self.stride))
    }

    fn step_order(&mut self, n: usize, round: usize) -> Vec<usize> {
        // Step in the opposite rotation, so the two phases disagree too.
        rotate(n, n.wrapping_sub(round.wrapping_mul(self.stride) % n.max(1)))
    }

    fn name(&self) -> &'static str {
        "skewed"
    }
}

/// A deterministic seeded shuffle, different in every round and phase:
/// the strongest delay-reordering short of exhaustive order enumeration.
#[derive(Clone, Copy, Debug)]
pub struct ShuffledScheduler {
    key: u64,
}

impl ShuffledScheduler {
    /// Creates a shuffler keyed by `key`; the same key replays the same
    /// per-round orders.
    pub fn new(key: u64) -> Self {
        ShuffledScheduler { key }
    }
}

impl RoundAdversary for ShuffledScheduler {
    fn compose_order(&mut self, n: usize, round: usize) -> Vec<usize> {
        keyed_shuffle(n, self.key ^ (round as u64).wrapping_mul(0x9E3779B97F4A7C15))
    }

    fn step_order(&mut self, n: usize, round: usize) -> Vec<usize> {
        keyed_shuffle(n, self.key ^ (round as u64).wrapping_mul(0xD1B54A32D192ED03) ^ 0x5555)
    }

    fn name(&self) -> &'static str {
        "shuffled"
    }
}

fn rotate(n: usize, by: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    (0..n).map(|i| (i + by) % n).collect()
}

/// Fisher–Yates driven by SplitMix64 — self-contained so adversaries stay
/// deterministic without threading an external RNG through the engine.
fn keyed_shuffle(n: usize, mut state: u64) -> Vec<usize> {
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut x = state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    };
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(order: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        order.len() == n
            && order.iter().all(|&v| {
                if v < n && !seen[v] {
                    seen[v] = true;
                    true
                } else {
                    false
                }
            })
    }

    #[test]
    fn all_schedulers_emit_permutations() {
        let mut adversaries: Vec<Box<dyn RoundAdversary>> = vec![
            Box::new(FairScheduler),
            Box::new(ReverseScheduler),
            Box::new(SkewedScheduler::default()),
            Box::new(SkewedScheduler { stride: 3 }),
            Box::new(ShuffledScheduler::new(7)),
        ];
        for adv in &mut adversaries {
            for n in [0usize, 1, 2, 7, 16] {
                for round in 1..=20 {
                    assert!(is_permutation(&adv.compose_order(n, round), n), "{}", adv.name());
                    assert!(is_permutation(&adv.step_order(n, round), n), "{}", adv.name());
                }
            }
        }
    }

    #[test]
    fn shuffled_is_deterministic_and_round_dependent() {
        let mut a = ShuffledScheduler::new(42);
        let mut b = ShuffledScheduler::new(42);
        assert_eq!(a.compose_order(9, 3), b.compose_order(9, 3));
        assert_eq!(a.step_order(9, 3), b.step_order(9, 3));
        let differs = (1..50).any(|r| {
            ShuffledScheduler::new(42).compose_order(9, r)
                != ShuffledScheduler::new(42).compose_order(9, r + 1)
        });
        assert!(differs, "shuffles must vary across rounds");
    }

    #[test]
    fn skewed_rotates_the_start() {
        let mut s = SkewedScheduler::default();
        assert_eq!(s.compose_order(4, 1), vec![1, 2, 3, 0]);
        assert_eq!(s.compose_order(4, 2), vec![2, 3, 0, 1]);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            FairScheduler.name(),
            ReverseScheduler.name(),
            SkewedScheduler::default().name(),
            ShuffledScheduler::new(0).name(),
        ];
        let mut unique = names.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
