//! Distributed problems `Π` and distributed decision problems `Δ_Y`.

use anonet_graph::{Label, LabeledGraph};

/// A distributed problem `Π` (paper, Section 1.1): a set of input
/// instances (labeled graphs) and, per instance, a set of valid output
/// labelings.
///
/// This trait is the *mathematical specification* used by the simulator
/// side — validating executions, checking the candidate condition C3 of
/// `A_*`, and defining the 2-hop colored variant `Π^c`. It is **not**
/// distributed itself; the distributed solvers and verifiers live in
/// `anonet-algorithms`.
pub trait Problem {
    /// Input label type.
    type Input: Label;
    /// Output label type.
    type Output: Label;

    /// `true` iff the labeled graph is an input instance of `Π`.
    fn is_instance(&self, instance: &LabeledGraph<Self::Input>) -> bool;

    /// `true` iff `output` (indexed by node) is a valid output labeling
    /// for `instance`. Implementations may assume
    /// `is_instance(instance)` holds and `output.len()` matches the node
    /// count.
    fn is_valid_output(
        &self,
        instance: &LabeledGraph<Self::Input>,
        output: &[Self::Output],
    ) -> bool;
}

/// The verdict of one node in a distributed decision.
///
/// For the decision problem `Δ_Y`: on a yes-instance all nodes must say
/// [`DecisionOutput::Yes`]; on a no-instance at least one node must say
/// [`DecisionOutput::No`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DecisionOutput {
    /// The node accepts.
    Yes,
    /// The node rejects (one rejection rejects globally).
    No,
}

impl anonet_graph::Label for DecisionOutput {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            DecisionOutput::Yes => 1,
            DecisionOutput::No => 0,
        });
    }
}

/// The distributed decision problem `Δ_Y` induced by a set of
/// yes-instances `Y` (paper, *Genuine Solvability*): every labeled graph
/// is an instance; valid outputs are all-`Yes` on members of `Y` and
/// anything containing a `No` otherwise.
pub struct DecisionProblem<I, F> {
    membership: F,
    _marker: std::marker::PhantomData<fn(&I)>,
}

impl<I, F> DecisionProblem<I, F>
where
    I: Label,
    F: Fn(&LabeledGraph<I>) -> bool,
{
    /// Creates `Δ_Y` from a membership predicate for `Y`.
    pub fn new(membership: F) -> Self {
        DecisionProblem { membership, _marker: std::marker::PhantomData }
    }

    /// `true` iff `g ∈ Y`.
    pub fn is_yes_instance(&self, g: &LabeledGraph<I>) -> bool {
        (self.membership)(g)
    }
}

impl<I, F> Problem for DecisionProblem<I, F>
where
    I: Label,
    F: Fn(&LabeledGraph<I>) -> bool,
{
    type Input = I;
    type Output = DecisionOutput;

    fn is_instance(&self, _instance: &LabeledGraph<I>) -> bool {
        true // Δ_Y is defined on all labeled graphs
    }

    fn is_valid_output(&self, instance: &LabeledGraph<I>, output: &[DecisionOutput]) -> bool {
        if self.is_yes_instance(instance) {
            output.iter().all(|o| *o == DecisionOutput::Yes)
        } else {
            output.contains(&DecisionOutput::No)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::generators;

    #[test]
    fn decision_problem_semantics() {
        // Y = graphs where every node is labeled 7.
        let delta =
            DecisionProblem::new(|g: &LabeledGraph<u32>| g.labels().iter().all(|&l| l == 7));
        let yes = generators::cycle(3).unwrap().with_uniform_label(7u32);
        let no = generators::cycle(3).unwrap().with_labels(vec![7u32, 7, 8]).unwrap();

        assert!(delta.is_instance(&yes));
        assert!(delta.is_instance(&no));

        use DecisionOutput::{No, Yes};
        assert!(delta.is_valid_output(&yes, &[Yes, Yes, Yes]));
        assert!(!delta.is_valid_output(&yes, &[Yes, No, Yes]));
        assert!(delta.is_valid_output(&no, &[Yes, No, Yes]));
        assert!(delta.is_valid_output(&no, &[No, No, No]));
        assert!(!delta.is_valid_output(&no, &[Yes, Yes, Yes]));
    }

    #[test]
    fn decision_output_encodes_distinctly() {
        use anonet_graph::Label;
        assert_ne!(DecisionOutput::Yes.encoded(), DecisionOutput::No.encoded());
    }
}
