//! # anonet-runtime
//!
//! The synchronous anonymous message-passing model of *"Anonymous Networks:
//! Randomization = 2-Hop Coloring"* (PODC 2014, Section 1.1), as an
//! executable runtime.
//!
//! * All nodes run the **same** [`Algorithm`] with no identifiers; a node's
//!   input is exactly its input label (which, per the paper's convention,
//!   includes its degree — the runtime passes the degree explicitly).
//! * Execution proceeds in **synchronous rounds**: each round every active
//!   node composes one optional message per port, messages are delivered,
//!   and each node steps its state with its inbox and **exactly one random
//!   bit** (the paper's normalization).
//! * Outputs are **irrevocable**: writing two different outputs is an
//!   algorithm bug, reported as [`RuntimeError::OutputConflict`].
//! * Randomness is abstracted as a [`RandomSource`]. A live RNG gives
//!   Las-Vegas executions; a prescribed [`BitAssignment`] tape replays the
//!   *simulation induced by `b`* of the paper's Section 2.2 — the heart of
//!   the derandomization.
//!
//! # Example: a trivial deterministic algorithm
//!
//! ```
//! use anonet_graph::generators;
//! use anonet_runtime::{run, Algorithm, Actions, ExecConfig, Inbox, RngSource, Status};
//!
//! /// Every node outputs its degree and halts after one round.
//! struct DegreeEcho;
//!
//! impl Algorithm for DegreeEcho {
//!     type Input = u32;
//!     type Message = ();
//!     type Output = u32;
//!     type State = u32; // the degree
//!
//!     fn init(&self, _input: &u32, degree: usize) -> u32 { degree as u32 }
//!     fn compose(&self, _state: &u32, _port: anonet_graph::Port) -> Option<()> { None }
//!     fn step(&self, state: u32, _round: usize, _inbox: &Inbox<()>, _bit: bool,
//!             actions: &mut Actions<u32>) -> u32 {
//!         actions.output(state);
//!         actions.halt();
//!         state
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = generators::cycle(5)?.with_uniform_label(0u32);
//! let exec = run(&DegreeEcho, &net, &mut RngSource::seeded(1), &ExecConfig::default())?;
//! assert_eq!(exec.status(), Status::Completed);
//! assert!(exec.outputs().iter().all(|o| *o == Some(2)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
mod algorithm;
mod assignment;
mod engine;
mod error;
mod oblivious;
mod problem;
mod randomness;
pub mod trace;

pub use adversary::{
    FairScheduler, ReverseScheduler, RoundAdversary, ShuffledScheduler, SkewedScheduler,
};
pub use algorithm::{Actions, Algorithm, Inbox};
pub use assignment::BitAssignment;
pub use engine::{run, run_with_adversary, ExecConfig, Execution, Status};
pub use error::RuntimeError;
pub use oblivious::{Oblivious, ObliviousAlgorithm};
pub use problem::{DecisionOutput, DecisionProblem, Problem};
pub use randomness::{RandomSource, RngSource, TapeSource, ZeroSource};
pub use trace::Event;

/// Convenient alias for results with [`RuntimeError`].
pub type Result<T> = std::result::Result<T, RuntimeError>;
