//! The [`Algorithm`] trait: what an anonymous node can do.

use std::fmt::Debug;

use anonet_graph::Port;

/// An anonymous message-passing algorithm (paper, Section 1.1).
///
/// Every node executes the same algorithm; a node's only inputs are its
/// input label, its degree, the messages arriving on its ports, and one
/// random bit per round. There are **no identifiers** and no global
/// knowledge — anything else an algorithm "knows" must travel in messages.
///
/// # Round structure
///
/// In round `r` (rounds are numbered from 1) each non-halted node:
///
/// 1. composes an optional message for each of its ports from its current
///    state ([`Algorithm::compose`]);
/// 2. the runtime delivers all messages along edges;
/// 3. steps its state given the round number, its inbox, and one random
///    bit ([`Algorithm::step`]), possibly writing its irrevocable output
///    and/or halting through [`Actions`].
///
/// # Determinism requirement
///
/// Both methods must be **pure functions** of their arguments: the entire
/// derandomization machinery (simulations induced by prescribed bit
/// assignments, execution lifting) relies on replaying executions
/// bit-for-bit. Do not read clocks, global RNGs, or other ambient state.
///
/// A *deterministic* anonymous algorithm is simply one that ignores the
/// `bit` argument.
pub trait Algorithm {
    /// Input label type (what `i(v)` carries).
    type Input: Clone + Debug;
    /// Message type exchanged on edges.
    type Message: Clone + Eq + Debug;
    /// Irrevocable output type.
    type Output: Clone + Eq + Debug;
    /// Per-node local state. `Eq` is required so executions can be
    /// compared node-by-node (the lifting-lemma experiments do exactly
    /// that).
    type State: Clone + Eq + Debug;

    /// Initial state of a node with the given input label and degree.
    ///
    /// The paper assumes the input label always includes the degree; the
    /// runtime passes the degree explicitly so input types need not
    /// duplicate it.
    fn init(&self, input: &Self::Input, degree: usize) -> Self::State;

    /// The message to send on `port` this round, or `None` for silence.
    fn compose(&self, state: &Self::State, port: Port) -> Option<Self::Message>;

    /// State transition at the end of a round.
    ///
    /// `round` is 1-indexed. `bit` is this round's random bit — exactly
    /// one per round, per the paper's normalization.
    fn step(
        &self,
        state: Self::State,
        round: usize,
        inbox: &Inbox<Self::Message>,
        bit: bool,
        actions: &mut Actions<Self::Output>,
    ) -> Self::State;
}

/// The messages a node received this round, indexed by its own ports.
///
/// `None` on a port means the neighbor sent nothing (or has halted).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Inbox<M> {
    slots: Vec<Option<M>>,
}

impl<M> Inbox<M> {
    pub(crate) fn new(slots: Vec<Option<M>>) -> Self {
        Inbox { slots }
    }

    /// Builds an inbox from explicit per-port slots. Useful for unit
    /// testing algorithms in isolation and for adapters (such as the
    /// color-based port emulation) that reconstruct port-indexed
    /// deliveries from other message formats.
    pub fn from_slots(slots: Vec<Option<M>>) -> Self {
        Inbox { slots }
    }

    /// The message received on `port`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range for this node's degree.
    pub fn get(&self, port: Port) -> Option<&M> {
        self.slots[port.index()].as_ref()
    }

    /// Number of ports (= the node's degree).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if the node has no ports (single-node graph).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates over `(port, message)` pairs for ports that received one.
    pub fn iter(&self) -> impl Iterator<Item = (Port, &M)> {
        self.slots.iter().enumerate().filter_map(|(p, m)| m.as_ref().map(|m| (Port::new(p), m)))
    }

    /// `true` if every port received a message.
    pub fn is_full(&self) -> bool {
        self.slots.iter().all(Option::is_some)
    }
}

/// Effects a node can produce during [`Algorithm::step`].
#[derive(Debug)]
pub struct Actions<O> {
    pub(crate) output: Option<O>,
    pub(crate) output_written: bool,
    pub(crate) halt: bool,
}

impl<O: Clone + Eq> Actions<O> {
    pub(crate) fn new(existing_output: Option<O>) -> Self {
        Actions { output: existing_output, output_written: false, halt: false }
    }

    /// Writes the node's irrevocable output.
    ///
    /// Writing the *same* value again is a no-op; writing a different
    /// value is an algorithm bug that the runtime reports as
    /// [`RuntimeError::OutputConflict`](crate::RuntimeError::OutputConflict).
    pub fn output(&mut self, value: O) {
        match &self.output {
            Some(existing) if *existing != value => {
                self.output_written = true; // flag conflict; engine checks
                self.output = Some(value);
            }
            Some(_) => {}
            None => {
                self.output = Some(value);
            }
        }
    }

    /// Halts the node: it will neither send nor receive from the next
    /// round on. Halting is independent of producing an output, but a
    /// well-formed Las-Vegas algorithm outputs before (or when) halting.
    pub fn halt(&mut self) {
        self.halt = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inbox_access() {
        let inbox = Inbox::new(vec![Some(1u8), None, Some(3)]);
        assert_eq!(inbox.len(), 3);
        assert!(!inbox.is_empty());
        assert_eq!(inbox.get(Port::new(0)), Some(&1));
        assert_eq!(inbox.get(Port::new(1)), None);
        assert!(!inbox.is_full());
        let pairs: Vec<(Port, &u8)> = inbox.iter().collect();
        assert_eq!(pairs, vec![(Port::new(0), &1), (Port::new(2), &3)]);
    }

    #[test]
    fn actions_idempotent_output() {
        let mut a: Actions<u8> = Actions::new(None);
        a.output(5);
        a.output(5);
        assert_eq!(a.output, Some(5));
        assert!(!a.output_written);
    }

    #[test]
    fn actions_conflicting_output_flags() {
        let mut a: Actions<u8> = Actions::new(Some(5));
        a.output(6);
        assert!(a.output_written);
    }

    #[test]
    fn actions_halt() {
        let mut a: Actions<u8> = Actions::new(None);
        assert!(!a.halt);
        a.halt();
        assert!(a.halt);
    }
}
