//! Sources of per-node, per-round random bits.

use anonet_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::assignment::BitAssignment;

/// A source of the one random bit each node consumes per round.
///
/// The paper's executions are parameterized by such bits: a live RNG
/// ([`RngSource`]) yields Las-Vegas executions, while a prescribed tape
/// ([`TapeSource`]) replays the *simulation induced by an assignment
/// `b : V → {0,1}^t`* (Section 2.2).
pub trait RandomSource {
    /// The bit for `node` in `round` (1-indexed), or `None` if this source
    /// has no more bits for that node — the simulation ends there.
    fn bit(&mut self, node: NodeId, round: usize) -> Option<bool>;
}

/// A live RNG source: fresh independent bits, never exhausted.
///
/// Bits are drawn from a seeded [`StdRng`] so whole executions remain
/// reproducible from a seed.
#[derive(Debug)]
pub struct RngSource {
    rng: StdRng,
}

impl RngSource {
    /// Creates a source from a seed.
    pub fn seeded(seed: u64) -> Self {
        RngSource { rng: StdRng::seed_from_u64(seed) }
    }

    /// Creates a source from an existing RNG's output.
    pub fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        RngSource { rng: StdRng::seed_from_u64(rng.next_u64()) }
    }
}

impl RandomSource for RngSource {
    fn bit(&mut self, _node: NodeId, _round: usize) -> Option<bool> {
        Some(self.rng.gen())
    }
}

/// A prescribed tape source: node `v` receives the bits of `b(v)` in
/// order and the source is exhausted for `v` after `|b(v)|` rounds.
///
/// Running an algorithm under a `TapeSource` for as long as no tape is
/// exhausted is exactly the paper's *simulation induced by `b`*.
#[derive(Clone, Debug)]
pub struct TapeSource {
    assignment: BitAssignment,
}

impl TapeSource {
    /// Creates a tape source from a bit assignment.
    pub fn new(assignment: BitAssignment) -> Self {
        TapeSource { assignment }
    }

    /// The underlying assignment.
    pub fn assignment(&self) -> &BitAssignment {
        &self.assignment
    }
}

impl RandomSource for TapeSource {
    fn bit(&mut self, node: NodeId, round: usize) -> Option<bool> {
        self.assignment.tape(node)?.get(round - 1)
    }
}

/// A source that always returns `false` — useful for running
/// deterministic algorithms, where the bit is ignored anyway, without
/// seeding anything.
#[derive(Clone, Copy, Debug, Default)]
pub struct ZeroSource;

impl RandomSource for ZeroSource {
    fn bit(&mut self, _node: NodeId, _round: usize) -> Option<bool> {
        Some(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::BitString;

    #[test]
    fn rng_source_is_reproducible() {
        let mut a = RngSource::seeded(42);
        let mut b = RngSource::seeded(42);
        for r in 1..=64 {
            assert_eq!(a.bit(NodeId::new(0), r), b.bit(NodeId::new(0), r));
        }
    }

    #[test]
    fn tape_source_replays_and_exhausts() {
        let tape: BitString = "101".parse().unwrap();
        let assignment = BitAssignment::uniform(2, &tape);
        let mut src = TapeSource::new(assignment);
        let v = NodeId::new(1);
        assert_eq!(src.bit(v, 1), Some(true));
        assert_eq!(src.bit(v, 2), Some(false));
        assert_eq!(src.bit(v, 3), Some(true));
        assert_eq!(src.bit(v, 4), None);
    }

    #[test]
    fn tape_source_out_of_range_node() {
        let assignment = BitAssignment::uniform(1, &BitString::new());
        let mut src = TapeSource::new(assignment);
        assert_eq!(src.bit(NodeId::new(5), 1), None);
    }

    #[test]
    fn zero_source_never_exhausts() {
        let mut z = ZeroSource;
        assert_eq!(z.bit(NodeId::new(9), 1000), Some(false));
    }
}
