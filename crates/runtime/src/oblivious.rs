//! Port-oblivious algorithms: the derandomizable class.
//!
//! The paper's views (Section 1.1) record node labels but not port
//! numbers, and its Section 1.3 remark notes that "port numbers are not
//! necessary under the assumption of randomized algorithms … by including
//! the sender's color in every message missing port numbers can be
//! emulated". Lifting an execution from the (portless) view quotient `G_*`
//! back to `G` is sound precisely for algorithms whose behaviour does not
//! depend on port numbers. [`ObliviousAlgorithm`] makes that property
//! *structural*: a node broadcasts one message to all neighbors and
//! receives the **sorted multiset** of its neighbors' messages, so port
//! information cannot leak into the state even by accident.
//!
//! Use [`Oblivious`] to run such an algorithm under the general
//! port-numbered [`Algorithm`](crate::Algorithm) runtime.

use std::fmt::Debug;

use anonet_graph::Port;

use crate::algorithm::{Actions, Algorithm, Inbox};

/// An anonymous algorithm that cannot observe port numbers.
///
/// Each round a node broadcasts at most one message to all of its
/// neighbors and steps on the *sorted multiset* of received messages.
/// Every `ObliviousAlgorithm` is an [`Algorithm`] via the [`Oblivious`]
/// adapter; the converse is false, and exactly this gap is what a 2-hop
/// coloring closes (sender colors identify edges).
pub trait ObliviousAlgorithm {
    /// Input label type.
    type Input: Clone + Debug;
    /// Broadcast message type; `Ord` so the received multiset has a
    /// canonical presentation.
    type Message: Clone + Ord + Debug;
    /// Irrevocable output type.
    type Output: Clone + Eq + Debug;
    /// Per-node state.
    type State: Clone + Eq + Debug;

    /// Initial state from the input label and degree.
    fn init(&self, input: &Self::Input, degree: usize) -> Self::State;

    /// The message broadcast to **all** neighbors this round, if any.
    fn broadcast(&self, state: &Self::State) -> Option<Self::Message>;

    /// State transition. `received` is sorted ascending and contains one
    /// entry per neighbor that broadcast this round.
    fn step(
        &self,
        state: Self::State,
        round: usize,
        received: &[Self::Message],
        bit: bool,
        actions: &mut Actions<Self::Output>,
    ) -> Self::State;
}

/// Adapter running an [`ObliviousAlgorithm`] under the port-numbered
/// runtime: broadcasts on every port, sorts the inbox before stepping.
///
/// # Example
///
/// ```
/// use anonet_graph::generators;
/// use anonet_runtime::{run, Actions, ExecConfig, Oblivious, ObliviousAlgorithm, ZeroSource};
///
/// /// Counts the neighbors that share the node's input label.
/// #[derive(Debug)]
/// struct TwinCount;
///
/// impl ObliviousAlgorithm for TwinCount {
///     type Input = u32;
///     type Message = u32;
///     type Output = usize;
///     type State = u32;
///
///     fn init(&self, input: &u32, _degree: usize) -> u32 { *input }
///     fn broadcast(&self, state: &u32) -> Option<u32> { Some(*state) }
///     fn step(&self, state: u32, _round: usize, received: &[u32], _bit: bool,
///             actions: &mut Actions<usize>) -> u32 {
///         actions.output(received.iter().filter(|&&m| m == state).count());
///         actions.halt();
///         state
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = generators::cycle(4)?.with_labels(vec![7u32, 7, 7, 8])?;
/// let exec = run(&Oblivious(TwinCount), &net, &mut ZeroSource, &ExecConfig::default())?;
/// assert_eq!(exec.outputs_unwrapped(), vec![1, 2, 1, 0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Oblivious<A>(pub A);

impl<A> Oblivious<A> {
    /// The wrapped oblivious algorithm.
    pub fn inner(&self) -> &A {
        &self.0
    }

    /// Unwraps the adapter.
    pub fn into_inner(self) -> A {
        self.0
    }
}

impl<A: ObliviousAlgorithm> Algorithm for Oblivious<A> {
    type Input = A::Input;
    type Message = A::Message;
    type Output = A::Output;
    type State = A::State;

    fn init(&self, input: &Self::Input, degree: usize) -> Self::State {
        self.0.init(input, degree)
    }

    fn compose(&self, state: &Self::State, _port: Port) -> Option<Self::Message> {
        self.0.broadcast(state)
    }

    fn step(
        &self,
        state: Self::State,
        round: usize,
        inbox: &Inbox<Self::Message>,
        bit: bool,
        actions: &mut Actions<Self::Output>,
    ) -> Self::State {
        let mut received: Vec<Self::Message> = inbox.iter().map(|(_, m)| m.clone()).collect();
        received.sort();
        self.0.step(state, round, &received, bit, actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, ExecConfig};
    use crate::randomness::ZeroSource;
    use anonet_graph::{generators, Graph};

    /// Broadcasts the input label once; outputs the sorted neighbor labels.
    #[derive(Debug)]
    struct NeighborLabels;

    impl ObliviousAlgorithm for NeighborLabels {
        type Input = u32;
        type Message = u32;
        type Output = Vec<u32>;
        type State = u32;

        fn init(&self, input: &u32, _degree: usize) -> u32 {
            *input
        }
        fn broadcast(&self, state: &u32) -> Option<u32> {
            Some(*state)
        }
        fn step(
            &self,
            state: u32,
            _round: usize,
            received: &[u32],
            _bit: bool,
            actions: &mut Actions<Vec<u32>>,
        ) -> u32 {
            actions.output(received.to_vec());
            actions.halt();
            state
        }
    }

    #[test]
    fn received_multiset_is_sorted_and_port_independent() {
        // Two different port orders around the center of a star: the
        // oblivious algorithm must produce identical outputs.
        let g1 = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let g2 = Graph::from_edges(4, &[(0, 3), (0, 1), (0, 2)]).unwrap();
        let l1 = g1.with_labels(vec![0u32, 30, 10, 20]).unwrap();
        let l2 = g2.with_labels(vec![0u32, 30, 10, 20]).unwrap();
        let e1 =
            run(&Oblivious(NeighborLabels), &l1, &mut ZeroSource, &ExecConfig::default()).unwrap();
        let e2 =
            run(&Oblivious(NeighborLabels), &l2, &mut ZeroSource, &ExecConfig::default()).unwrap();
        assert_eq!(e1.output(anonet_graph::NodeId::new(0)), Some(&vec![10, 20, 30]));
        assert_eq!(e1.outputs(), e2.outputs());
    }

    #[test]
    fn multiset_keeps_duplicates() {
        let net = generators::star(4).unwrap().with_labels(vec![1u32, 5, 5, 5]).unwrap();
        let e =
            run(&Oblivious(NeighborLabels), &net, &mut ZeroSource, &ExecConfig::default()).unwrap();
        assert_eq!(e.output(anonet_graph::NodeId::new(0)), Some(&vec![5, 5, 5]));
    }

    #[test]
    fn inner_access() {
        let o = Oblivious(NeighborLabels);
        let _: &NeighborLabels = o.inner();
        let _: NeighborLabels = o.into_inner();
    }
}
