//! Error type for the runtime.

use std::error::Error;
use std::fmt;

use anonet_graph::NodeId;

/// Errors produced while executing an anonymous algorithm.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A node attempted to overwrite its irrevocable output with a
    /// different value — an algorithm bug.
    OutputConflict {
        /// The offending node.
        node: NodeId,
        /// The round in which the conflicting write happened.
        round: usize,
    },
    /// The network graph failed validation (e.g. not connected).
    InvalidNetwork {
        /// Human-readable description.
        reason: String,
    },
    /// A [`RoundAdversary`](crate::RoundAdversary) emitted a schedule that
    /// is not a permutation of the node set.
    InvalidSchedule {
        /// The round whose schedule was malformed.
        round: usize,
        /// Human-readable description.
        reason: String,
    },
    /// A bit assignment did not cover every node of the graph it was
    /// used with.
    AssignmentMismatch {
        /// Nodes covered by the assignment.
        assignment_nodes: usize,
        /// Nodes in the graph.
        graph_nodes: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::OutputConflict { node, round } => {
                write!(f, "node {node} attempted to change its irrevocable output in round {round}")
            }
            RuntimeError::InvalidNetwork { reason } => {
                write!(f, "invalid network: {reason}")
            }
            RuntimeError::InvalidSchedule { round, reason } => {
                write!(f, "invalid adversary schedule in round {round}: {reason}")
            }
            RuntimeError::AssignmentMismatch { assignment_nodes, graph_nodes } => {
                write!(
                    f,
                    "bit assignment covers {assignment_nodes} nodes but the graph has {graph_nodes}"
                )
            }
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RuntimeError::OutputConflict { node: NodeId::new(3), round: 7 };
        assert!(e.to_string().contains("v3"));
        assert!(e.to_string().contains("round 7"));
        let e = RuntimeError::AssignmentMismatch { assignment_nodes: 2, graph_nodes: 5 };
        assert!(e.to_string().contains('2') && e.to_string().contains('5'));
    }
}
