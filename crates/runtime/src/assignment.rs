//! Bit assignments `b : V → {0,1}^*` and the paper's total order on them.

use std::fmt;

use anonet_graph::{BitString, NodeId};

/// An assignment of a bitstring tape to every node of a graph.
///
/// A *t-round simulation induced by `b`* (paper, Section 2.2) runs the
/// algorithm with `b(v)` replacing node `v`'s random bits. The
/// derandomization enumerates assignments in a fixed total order:
///
/// * assignments of smaller uniform length `t` come first;
/// * equal-length assignments compare lexicographically on the
///   concatenation `(b(w₁), …, b(w_k))` where `w₁ < … < w_k` is a
///   *canonical node order* (in the paper, the total order on `V_∞`).
///
/// [`BitAssignment::cmp_in_order`] implements exactly that comparison; the
/// canonical node order is supplied by the caller because it comes from
/// the views machinery.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BitAssignment {
    tapes: Vec<BitString>,
}

impl BitAssignment {
    /// Creates an assignment from per-node tapes (`tapes[i]` for node `i`).
    pub fn new(tapes: Vec<BitString>) -> Self {
        BitAssignment { tapes }
    }

    /// Assigns the same tape to every one of `n` nodes.
    pub fn uniform(n: usize, tape: &BitString) -> Self {
        BitAssignment { tapes: vec![tape.clone(); n] }
    }

    /// The all-empty assignment on `n` nodes (induces a 0-round simulation).
    pub fn empty(n: usize) -> Self {
        BitAssignment { tapes: vec![BitString::new(); n] }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.tapes.len()
    }

    /// `true` if the assignment covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.tapes.is_empty()
    }

    /// The tape of `node`, or `None` if out of range.
    pub fn tape(&self, node: NodeId) -> Option<&BitString> {
        self.tapes.get(node.index())
    }

    /// All tapes, indexed by node.
    pub fn tapes(&self) -> &[BitString] {
        &self.tapes
    }

    /// The length of the shortest tape: the number of rounds the induced
    /// simulation lasts (`l` in the paper's `Update-Output`).
    pub fn simulation_length(&self) -> usize {
        self.tapes.iter().map(BitString::len).min().unwrap_or(0)
    }

    /// `true` if every tape has exactly length `t`.
    pub fn is_uniform_length(&self, t: usize) -> bool {
        self.tapes.iter().all(|b| b.len() == t)
    }

    /// `true` if `self` extends `other` tape-wise: `other.tape(v)` is a
    /// prefix of `self.tape(v)` for every node (the paper's
    /// *p-extension* when lengths are uniform `p`).
    pub fn extends(&self, other: &BitAssignment) -> bool {
        self.tapes.len() == other.tapes.len()
            && other.tapes.iter().zip(&self.tapes).all(|(o, s)| o.is_prefix_of(s))
    }

    /// The paper's total order, parameterized by a canonical node order.
    ///
    /// Compares first by tape length (both assignments must be
    /// uniform-length; mixed lengths compare by their *minimum* length,
    /// matching the paper's `t₁ < t₂` extension), then lexicographically
    /// on the concatenated tapes in `node_order`.
    ///
    /// # Panics
    ///
    /// Panics if `node_order` is not a permutation of `0..len`.
    pub fn cmp_in_order(&self, other: &BitAssignment, node_order: &[NodeId]) -> std::cmp::Ordering {
        assert_eq!(node_order.len(), self.tapes.len(), "node order must cover the assignment");
        assert_eq!(self.tapes.len(), other.tapes.len(), "assignments must cover the same nodes");
        let t1 = self.simulation_length();
        let t2 = other.simulation_length();
        t1.cmp(&t2).then_with(|| {
            for &v in node_order {
                // anonet-lint: allow(panic-hygiene, reason = "documented precondition: node_order is a permutation of both assignments")
                let a = self.tape(v).expect("node order in range");
                // anonet-lint: allow(panic-hygiene, reason = "documented precondition: node_order is a permutation of both assignments")
                let b = other.tape(v).expect("node order in range");
                match a.as_slice().cmp(b.as_slice()) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        })
    }

    /// Enumerates all `2^(n·extra)` extensions of `self` by `extra` more
    /// bits per node, in the canonical order induced by `node_order`
    /// (smallest first). The borrowed data is cloned into the iterator.
    ///
    /// This is the search space of the paper's `Update-Bits`: all
    /// `p`-extensions of the current assignment.
    ///
    /// # Panics
    ///
    /// Panics if `node_order` is not a permutation of the assignment's
    /// nodes, or if `n·extra ≥ 64` (the enumeration would not terminate in
    /// any reasonable time anyway).
    pub fn extensions(
        &self,
        extra: usize,
        node_order: &[NodeId],
    ) -> impl Iterator<Item = BitAssignment> + '_ {
        assert_eq!(node_order.len(), self.tapes.len(), "node order must cover the assignment");
        let total_bits = self.tapes.len() * extra;
        assert!(total_bits < 64, "extension space of 2^{total_bits} is not enumerable");
        let base = self.clone();
        let order: Vec<NodeId> = node_order.to_vec();
        (0u64..(1u64 << total_bits)).map(move |code| {
            // The order must make earlier nodes' bits more significant so
            // that increasing `code` enumerates in canonical order.
            let mut tapes = base.tapes.clone();
            let mut shift = total_bits;
            for &v in &order {
                for _ in 0..extra {
                    shift -= 1;
                    tapes[v.index()].push((code >> shift) & 1 == 1);
                }
            }
            BitAssignment { tapes }
        })
    }
}

impl fmt::Display for BitAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.tapes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    fn order(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn simulation_length_is_min() {
        let a = BitAssignment::new(vec![bs("101"), bs("11")]);
        assert_eq!(a.simulation_length(), 2);
        assert!(!a.is_uniform_length(3));
        assert!(BitAssignment::uniform(3, &bs("00")).is_uniform_length(2));
    }

    #[test]
    fn extends_checks_prefixes() {
        let small = BitAssignment::new(vec![bs("1"), bs("0")]);
        let big = BitAssignment::new(vec![bs("10"), bs("01")]);
        let wrong = BitAssignment::new(vec![bs("00"), bs("01")]);
        assert!(big.extends(&small));
        assert!(!wrong.extends(&small));
        assert!(small.extends(&small));
    }

    #[test]
    fn order_length_dominates() {
        let short = BitAssignment::uniform(2, &bs("1"));
        let long = BitAssignment::uniform(2, &bs("00"));
        assert_eq!(short.cmp_in_order(&long, &order(2)), std::cmp::Ordering::Less);
    }

    #[test]
    fn order_is_lexicographic_in_node_order() {
        let a = BitAssignment::new(vec![bs("0"), bs("1")]);
        let b = BitAssignment::new(vec![bs("1"), bs("0")]);
        // In order [0, 1]: a = "01" < b = "10".
        assert_eq!(a.cmp_in_order(&b, &order(2)), std::cmp::Ordering::Less);
        // In the reversed node order the comparison flips.
        let rev = vec![NodeId::new(1), NodeId::new(0)];
        assert_eq!(a.cmp_in_order(&b, &rev), std::cmp::Ordering::Greater);
    }

    #[test]
    fn extensions_enumerate_in_canonical_order() {
        let base = BitAssignment::empty(2);
        let ord = order(2);
        let all: Vec<BitAssignment> = base.extensions(1, &ord).collect();
        assert_eq!(all.len(), 4);
        // Must be sorted under cmp_in_order.
        for w in all.windows(2) {
            assert_eq!(w[0].cmp_in_order(&w[1], &ord), std::cmp::Ordering::Less);
        }
        // All extend the base.
        assert!(all.iter().all(|a| a.extends(&base)));
        // First is all-zeros, last all-ones.
        assert_eq!(all[0].tape(NodeId::new(0)).unwrap().to_string(), "0");
        assert_eq!(all[3].tape(NodeId::new(0)).unwrap().to_string(), "1");
        assert_eq!(all[3].tape(NodeId::new(1)).unwrap().to_string(), "1");
    }

    #[test]
    fn extensions_respect_existing_prefixes() {
        let base = BitAssignment::new(vec![bs("1"), bs("0")]);
        let ord = order(2);
        for ext in base.extensions(2, &ord) {
            assert!(ext.extends(&base));
            assert!(ext.is_uniform_length(3));
        }
        assert_eq!(base.extensions(2, &ord).count(), 16);
    }

    #[test]
    #[should_panic(expected = "not enumerable")]
    fn extensions_reject_huge_spaces() {
        let base = BitAssignment::empty(8);
        let _ = base.extensions(8, &order(8));
    }
}
