//! Smoke test for the soak campaign + sentinel stack: the three-cell
//! mini-campaign must finish fast, serialize to the versioned
//! `BENCH_soak.json` schema through the workspace's shared JSON layer,
//! survive a parse round trip, and gate clean against itself.

use std::time::{Duration, Instant};

use anonet_obs::Json;
use anonet_soak::{baseline, diff, report, run_campaign, CampaignConfig, DEFAULT_BAND};

/// Every key the machine-readable schema promises, top level and per cell.
const TOP_KEYS: &[&str] = &[
    "experiment",
    "schema_version",
    "base_seed",
    "reps_per_cell",
    "budget_secs",
    "truncated",
    "totals",
    "cells",
    "skipped_cells",
    "oracle_failures",
];
const TOTALS_KEYS: &[&str] =
    &["cells", "cases", "wall_secs", "cell_wall_median_secs", "cell_wall_p95_secs"];
const CELL_KEYS: &[&str] = &[
    "id",
    "replay",
    "cases",
    "quotient_nodes",
    "byte_identical",
    "cold_hits",
    "cold_misses",
    "warm_hits",
    "warm_misses",
    "disk_hits",
    "messages",
    "message_bytes",
    "hit_rate_warm",
    "wall_secs",
    "warm_wall_secs",
    "job_wall_median_secs",
    "job_wall_p95_secs",
    "update_graph_secs",
];

#[test]
fn mini_campaign_emits_the_full_schema_and_gates_clean() {
    let started = Instant::now();
    let run = run_campaign(&CampaignConfig::smoke()).expect("smoke campaign runs");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "three-cell smoke campaign must stay fast, took {:?}",
        started.elapsed()
    );

    assert_eq!(run.cells.len(), 3);
    assert!(run.failures.is_empty(), "conformance oracles pass: {:?}", run.failures);
    assert!(!run.truncated);
    for cell in &run.cells {
        assert!(cell.byte_identical, "warm pass replays cold pass in {}", cell.id);
        assert!(cell.replay.starts_with("tc1:"), "replay string in {}", cell.id);
        assert_eq!(cell.warm_hits, cell.cases, "warm pass fully cached in {}", cell.id);
        assert_eq!(cell.warm_misses, 0);
        assert!(cell.messages > 0, "message probe recorded traffic in {}", cell.id);
    }

    // Serialize, then parse back through the shared JSON layer.
    let text = report::to_json(&run).pretty();
    let parsed = Json::parse(&text).expect("report is valid JSON");
    for key in TOP_KEYS {
        assert!(parsed.get(key).is_some(), "schema key `{key}` present");
    }
    let totals = parsed.get("totals").expect("totals object");
    for key in TOTALS_KEYS {
        assert!(totals.get(key).is_some(), "totals key `{key}` present");
    }
    let cells = parsed.get("cells").and_then(Json::items).expect("cells array");
    assert_eq!(cells.len(), 3);
    for cell in cells {
        for key in CELL_KEYS {
            assert!(cell.get(key).is_some(), "cell key `{key}` present");
        }
    }

    // The serialized form is a fixed point: parsing and re-serializing
    // reproduces the exact text (timings are µs-rounded on write, so the
    // first serialization already canonicalized them).
    let reparsed =
        baseline::from_json(std::path::Path::new("mem.json"), &parsed).expect("schema parses");
    assert_eq!(report::to_json(&reparsed).pretty(), text);
    let outcome = diff::diff(&reparsed, &run, DEFAULT_BAND);
    assert!(outcome.passed(), "identity gate passes: {:?}", outcome.regressions);
    assert!(outcome.notes.is_empty(), "identity gate is silent: {:?}", outcome.notes);
}
