//! Cross-crate integration: the batch engine + derandomization cache must
//! be a pure performance layer. For every problem × family, running
//! instances through `derandomize_batch` / `pipeline_batch` with a shared
//! cache must produce results byte-identical to the plain sequential,
//! uncached `Derandomizer` / `run_pipeline` calls.

use std::sync::Arc;

use anonet::algorithms::coloring::RandomizedColoring;
use anonet::algorithms::mis::RandomizedMis;
use anonet::algorithms::problems::{GreedyColoringProblem, MisProblem};
use anonet::batch::{BatchScheduler, DerandCache};
use anonet::core::batch::{derandomize_batch, pipeline_batch};
use anonet::core::pipeline::{run_pipeline, run_pipeline_cached, run_pipeline_observed};
use anonet::core::{DerandomizedRun, Derandomizer, SearchStrategy};
use anonet::graph::{generators, Label, LabeledGraph};
use anonet::obs::{bridge, noop, NoopRecorder};
use anonet::runtime::{run, ExecConfig, Oblivious, ObliviousAlgorithm, Problem, RngSource};
use anonet::testkit::{build_instance, TestCase};

/// Builds one 2-hop colored instance from a testkit replay string.
fn colored_case(replay: &str) -> LabeledGraph<((), u32)> {
    let case: TestCase = replay.parse().expect("replay strings are written in-test");
    let inst = build_instance(&case).expect("generator succeeds");
    inst.colors.map_labels(|&c| ((), c))
}

/// 2-hop colored instances across lift families and standard graphs,
/// drawn through the testkit generator: the five seed-0 C3 lifts share
/// one quotient (so the cache must collapse their searches), while the
/// seed-1 standard graphs are mostly prime with distinct quotients.
fn colored_families() -> Vec<(String, LabeledGraph<((), u32)>)> {
    let mut out = Vec::new();
    for m in [1usize, 2, 3, 4, 5] {
        let replay = format!("tc1:family=cycle,n=3,seed=0,color=greedy,lift={m},adv=fair");
        out.push((format!("lift-C3x{m}"), colored_case(&replay)));
    }
    for (name, family, n) in [
        ("petersen", "petersen", 10),
        ("path-8", "path", 8),
        ("grid-3x3", "grid", 9),
        ("wheel-7", "wheel", 7),
    ] {
        let replay = format!("tc1:family={family},n={n},seed=1,color=greedy,lift=1,adv=fair");
        out.push((name.to_string(), colored_case(&replay)));
    }
    out
}

/// Byte-serializes every observable field of a run, so equality below is
/// byte-equality of the results, not a lossy comparison.
fn run_bytes<O: Label>(run: &DerandomizedRun<O>) -> Vec<u8> {
    let mut out = Vec::new();
    for o in &run.outputs {
        o.encode(&mut out);
    }
    out.extend_from_slice(&(run.quotient_nodes as u64).to_le_bytes());
    out.extend_from_slice(&(run.multiplicity as u64).to_le_bytes());
    out.extend_from_slice(&(run.simulation_rounds as u64).to_le_bytes());
    out.extend_from_slice(&(run.attempts as u64).to_le_bytes());
    for tape in run.assignment.tapes() {
        out.extend_from_slice(&(tape.len() as u64).to_le_bytes());
        out.extend(tape.iter().map(u8::from));
    }
    out
}

fn assert_batch_matches_sequential<A>(
    alg: A,
    strategy: SearchStrategy,
    families: Vec<(String, LabeledGraph<((), u32)>)>,
) where
    A: ObliviousAlgorithm<Input = ()> + Clone + Sync,
    A::Output: Label + Send,
{
    let instances: Vec<LabeledGraph<((), u32)>> = families.iter().map(|(_, g)| g.clone()).collect();
    let config = ExecConfig::default();

    let sequential: Vec<Vec<u8>> = instances
        .iter()
        .map(|inst| {
            let run = Derandomizer::new(alg.clone())
                .with_strategy(strategy)
                .run(inst)
                .expect("sequential derandomization succeeds");
            run_bytes(&run)
        })
        .collect();

    for threads in [1usize, 4] {
        let cache = Arc::new(DerandCache::new());
        let batch = derandomize_batch(
            &alg,
            &instances,
            strategy,
            &config,
            &BatchScheduler::with_threads(threads),
            Some(&cache),
        );
        assert_eq!(batch.stats.succeeded, instances.len());
        let stats = batch.stats.cache.expect("cache stats attached");
        assert_eq!(stats.assignment_hits + stats.assignment_misses, instances.len() as u64);
        if threads == 1 {
            // Sequentially, only the first instance of each quotient class
            // misses; concurrent warm-up may race several misses in flight
            // before the first insert lands, so no hit floor there.
            assert!(stats.assignment_hits >= 4, "five C3 lifts must share one search");
        }
        for ((name, _), (seq, par)) in
            families.iter().zip(sequential.iter().zip(batch.results.iter()))
        {
            let par = par.ok().expect("batch job succeeds");
            assert_eq!(
                seq,
                &run_bytes(par),
                "{name}: batch+cache ({threads} threads) diverged from sequential uncached"
            );
        }
    }
}

#[test]
fn batched_mis_is_byte_identical_to_sequential() {
    assert_batch_matches_sequential(
        RandomizedMis::new(),
        SearchStrategy::default(),
        colored_families(),
    );
}

#[test]
fn batched_coloring_is_byte_identical_to_sequential() {
    assert_batch_matches_sequential(
        RandomizedColoring::new(),
        SearchStrategy::default(),
        colored_families(),
    );
}

#[test]
fn batched_exhaustive_search_is_byte_identical_to_sequential() {
    // Exhaustive enumeration is 2^(|V_*|·t): restrict to the lift family,
    // whose quotient stays at 3 nodes (the greedily colored standard
    // graphs are mostly prime — quotient = whole graph — and out of
    // reach for the paper's literal minimal-assignment search).
    let lifts = colored_families()
        .into_iter()
        .filter(|(name, _)| name.starts_with("lift-"))
        .collect::<Vec<_>>();
    assert_eq!(lifts.len(), 5);
    assert_batch_matches_sequential(
        RandomizedMis::new(),
        SearchStrategy::Exhaustive { max_total_bits: 24 },
        lifts,
    );
}

#[test]
fn batched_pipeline_matches_sequential_and_stays_valid() {
    let nets: Vec<(LabeledGraph<()>, u64)> = [
        generators::cycle(9).unwrap(),
        generators::path(7).unwrap(),
        generators::petersen(),
        generators::grid(3, 3, true).unwrap(),
    ]
    .into_iter()
    .flat_map(|g| (0..2u64).map(move |seed| (g.with_uniform_label(()), seed)))
    .collect();

    let cache = Arc::new(DerandCache::new());
    let batch = pipeline_batch(
        &RandomizedMis::new(),
        &nets,
        SearchStrategy::default(),
        &ExecConfig::default(),
        &BatchScheduler::with_threads(3),
        Some(&cache),
    );
    assert_eq!(batch.stats.succeeded, nets.len());

    for ((net, seed), result) in nets.iter().zip(batch.results.iter()) {
        let batched = result.ok().expect("pipeline job succeeds");
        let sequential = run_pipeline(&RandomizedMis::new(), net, *seed, SearchStrategy::default())
            .expect("sequential pipeline succeeds");
        assert_eq!(sequential.outputs, batched.outputs);
        assert_eq!(sequential.coloring, batched.coloring);
        assert_eq!(run_bytes(&sequential.deterministic), run_bytes(&batched.deterministic));
        assert!(MisProblem.is_valid_output(net, &batched.outputs));
    }
}

/// The no-op recorder must be observationally free: threading it through
/// any layer produces outputs, traces, and cache contents byte-identical
/// to the un-observed default, across problems × families × thread
/// counts.
#[test]
fn noop_observation_is_byte_identical_across_layers() {
    let families = colored_families();
    let strategy = SearchStrategy::default();
    let config = ExecConfig::default();

    // Layer 1 — the sequential derandomizer, both problems, every family.
    for (name, inst) in &families {
        let plain = Derandomizer::new(RandomizedMis::new()).run(inst).unwrap();
        let observed =
            Derandomizer::new(RandomizedMis::new()).with_recorder(noop()).run(inst).unwrap();
        assert_eq!(
            run_bytes(&plain),
            run_bytes(&observed),
            "{name}: MIS derandomizer diverged under the noop recorder"
        );
        let plain = Derandomizer::new(RandomizedColoring::new()).run(inst).unwrap();
        let observed =
            Derandomizer::new(RandomizedColoring::new()).with_recorder(noop()).run(inst).unwrap();
        assert_eq!(
            run_bytes(&plain),
            run_bytes(&observed),
            "{name}: coloring derandomizer diverged under the noop recorder"
        );
    }

    // Layer 2 — the batch scheduler + shared cache: results and the
    // cache's own accounting (entries, hits, resident bytes) must match.
    let instances: Vec<LabeledGraph<((), u32)>> = families.iter().map(|(_, g)| g.clone()).collect();
    for threads in [1usize, 4] {
        let plain_cache = Arc::new(DerandCache::new());
        let plain = derandomize_batch(
            &RandomizedMis::new(),
            &instances,
            strategy,
            &config,
            &BatchScheduler::with_threads(threads),
            Some(&plain_cache),
        );
        let observed_cache = Arc::new(DerandCache::new());
        let observed = derandomize_batch(
            &RandomizedMis::new(),
            &instances,
            strategy,
            &config,
            &BatchScheduler::with_threads(threads).with_recorder(noop()),
            Some(&observed_cache),
        );
        for (i, (name, _)) in families.iter().enumerate() {
            let p = plain.results[i].ok().expect("plain batch job succeeds");
            let o = observed.results[i].ok().expect("observed batch job succeeds");
            assert_eq!(
                run_bytes(p),
                run_bytes(o),
                "{name}: batch ({threads} threads) diverged under the noop recorder"
            );
        }
        assert_eq!(
            plain_cache.stats(),
            observed_cache.stats(),
            "cache accounting ({threads} threads) diverged under the noop recorder"
        );
    }

    // Layer 3 — the full Theorem-1 pipeline entry points.
    let net = generators::petersen().with_uniform_label(());
    for seed in 0..3u64 {
        let plain = run_pipeline_cached(&RandomizedMis::new(), &net, seed, strategy, &config, None)
            .unwrap();
        let observed = run_pipeline_observed(
            &RandomizedMis::new(),
            &net,
            seed,
            strategy,
            &config,
            None,
            &noop(),
        )
        .unwrap();
        assert_eq!(plain.outputs, observed.outputs);
        assert_eq!(plain.coloring, observed.coloring);
        assert_eq!(plain.random_bits, observed.random_bits);
        assert_eq!(run_bytes(&plain.deterministic), run_bytes(&observed.deterministic));
    }

    // Layer 4 — the event trace: rendering a traced run through the
    // recorder-backed renderer with the noop recorder equals the plain
    // timeline, and the execution itself is unchanged by tracing + obs.
    let traced = run(
        &Oblivious(RandomizedMis::new()),
        &net,
        &mut RngSource::seeded(5),
        &ExecConfig::default().tracing(),
    )
    .unwrap();
    let events = traced.events().expect("tracing was enabled");
    assert_eq!(bridge::timeline(&NoopRecorder, events), traced.timeline());
}

#[test]
fn batched_coloring_pipeline_is_valid() {
    let nets: Vec<(LabeledGraph<()>, u64)> = (0..3u64)
        .map(|seed| (generators::grid(3, 4, false).unwrap().with_uniform_label(()), seed))
        .collect();
    let cache = Arc::new(DerandCache::new());
    let batch = pipeline_batch(
        &RandomizedColoring::new(),
        &nets,
        SearchStrategy::default(),
        &ExecConfig::default(),
        &BatchScheduler::new(),
        Some(&cache),
    );
    for ((net, _), result) in nets.iter().zip(batch.results.iter()) {
        let run = result.ok().expect("job succeeds");
        assert!(GreedyColoringProblem.is_valid_output(net, &run.outputs));
    }
}
