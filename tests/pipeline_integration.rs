//! Cross-crate integration: the full Theorem-1 pipeline over problems ×
//! families × seeds, verified both centrally (problem specifications) and
//! distributively (anonymous verifiers).

use anonet::algorithms::coloring::RandomizedColoring;
use anonet::algorithms::mis::RandomizedMis;
use anonet::algorithms::problems::{GreedyColoringProblem, MisProblem};
use anonet::algorithms::verify::{accepted, ColoringVerifier, MisVerifier};
use anonet::core::pipeline::run_pipeline;
use anonet::core::SearchStrategy;
use anonet::graph::{coloring, generators, Graph};
use anonet::runtime::{run, ExecConfig, Oblivious, Problem, ZeroSource};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn families(seed: u64) -> Vec<(String, Graph)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    vec![
        ("cycle-9".into(), generators::cycle(9).unwrap()),
        ("path-8".into(), generators::path(8).unwrap()),
        ("star-7".into(), generators::star(7).unwrap()),
        ("petersen".into(), generators::petersen()),
        ("torus-3x3".into(), generators::grid(3, 3, true).unwrap()),
        ("tree-10".into(), generators::random_tree(10, &mut rng).unwrap()),
        ("gnp-10".into(), generators::gnp_connected(10, 0.3, &mut rng).unwrap()),
        ("complete-5".into(), generators::complete(5).unwrap()),
    ]
}

#[test]
fn pipeline_mis_verified_centrally_and_distributively() {
    for (name, g) in families(1) {
        let net = g.with_uniform_label(());
        for seed in 0..2 {
            let run_result =
                run_pipeline(&RandomizedMis::new(), &net, seed, SearchStrategy::default())
                    .unwrap_or_else(|e| panic!("{name} seed {seed}: pipeline failed: {e}"));
            assert!(
                MisProblem.is_valid_output(&net, &run_result.outputs),
                "{name} seed {seed}: central verification failed"
            );
            // Distributed verification of the same output.
            let labeled = g.with_labels(run_result.outputs.clone()).unwrap();
            let verdicts =
                run(&Oblivious(MisVerifier), &labeled, &mut ZeroSource, &ExecConfig::default())
                    .unwrap();
            assert!(
                accepted(&verdicts.outputs_unwrapped()),
                "{name} seed {seed}: distributed verification failed"
            );
            // Stage 1 really produced a 2-hop coloring.
            let colored = g.with_labels(run_result.coloring.clone()).unwrap();
            assert!(coloring::is_two_hop_coloring(&colored));
        }
    }
}

#[test]
fn pipeline_coloring_verified_centrally_and_distributively() {
    for (name, g) in families(2) {
        let net = g.with_uniform_label(());
        let run_result =
            run_pipeline(&RandomizedColoring::new(), &net, 3, SearchStrategy::default())
                .unwrap_or_else(|e| panic!("{name}: pipeline failed: {e}"));
        assert!(
            GreedyColoringProblem.is_valid_output(&net, &run_result.outputs),
            "{name}: central verification failed"
        );
        let labeled = g.with_labels(run_result.outputs.clone()).unwrap();
        let verdicts = run(
            &Oblivious(ColoringVerifier::<u32>::new()),
            &labeled,
            &mut ZeroSource,
            &ExecConfig::default(),
        )
        .unwrap();
        assert!(accepted(&verdicts.outputs_unwrapped()), "{name}: distributed check failed");
    }
}

#[test]
fn pipeline_is_reproducible_end_to_end() {
    let net = generators::petersen().with_uniform_label(());
    let a = run_pipeline(&RandomizedMis::new(), &net, 9, SearchStrategy::default()).unwrap();
    let b = run_pipeline(&RandomizedMis::new(), &net, 9, SearchStrategy::default()).unwrap();
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.coloring, b.coloring);
    assert_eq!(a.deterministic.assignment, b.deterministic.assignment);
}

#[test]
fn pipeline_outputs_respect_view_classes() {
    // On a lifted instance, pipeline outputs must be constant on fibers of
    // the quotient *of the colored instance stage 2 actually saw*.
    use anonet::views::{quotient, ViewMode};
    let net = generators::cycle(12).unwrap().with_uniform_label(());
    let result = run_pipeline(&RandomizedMis::new(), &net, 4, SearchStrategy::default()).unwrap();
    let colored = net
        .graph()
        .with_labels(result.coloring.iter().map(|c| ((), c.clone())).collect::<Vec<_>>())
        .unwrap();
    let q = quotient(&colored, ViewMode::Portless).unwrap();
    for u in net.graph().nodes() {
        for v in net.graph().nodes() {
            if q.project(u) == q.project(v) {
                assert_eq!(result.outputs[u.index()], result.outputs[v.index()]);
            }
        }
    }
}
