//! The metamorphic conformance suites — the testkit's whole repertoire
//! (view-graph/replay/cache/pipeline differentials, renumbering and port
//! metamorphics, lift projections, adversarial schedules, round-cap
//! negatives) over the seeded generator stream, one suite per algorithm.
//!
//! Knobs: `ANONET_TESTKIT_SEED`, `ANONET_TESTKIT_CASES`,
//! `ANONET_ADVERSARY` (`fair`/`reverse`/`skewed`/`shuffled`/`mixed`), and
//! `ANONET_TESTKIT_REPLAY='tc1:…'` to re-run a printed failure.

use anonet::algorithms::coloring::RandomizedColoring;
use anonet::algorithms::matching::{MatchingProblem, RandomizedMatching};
use anonet::algorithms::mis::RandomizedMis;
use anonet::algorithms::problems::{GreedyColoringProblem, MisProblem};
use anonet::testkit::{run_leader_suite, Suite};

#[test]
fn mis_conformance() {
    Suite::new("mis", RandomizedMis::new(), MisProblem, |_| ()).with_astar().run(18);
}

#[test]
fn coloring_conformance() {
    // RandomizedColoring draws 16-bit candidates, so the exhaustive A_∞
    // enumeration is out of reach — the view-graph oracle covers it.
    Suite::new("coloring", RandomizedColoring::new(), GreedyColoringProblem, |_| ()).run(18);
}

#[test]
fn matching_conformance() {
    // The matching algorithm's input *is* its color. Matching draws a
    // proposal direction and an acceptance bit per phase, so its literal
    // A_* enumeration is only feasible on two-class quotients.
    Suite::new("matching", RandomizedMatching::<u32>::new(), MatchingProblem, |c| c)
        .with_astar_tiny()
        .run(18);
}

#[test]
fn leader_conformance() {
    run_leader_suite(30);
}
