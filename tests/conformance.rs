//! The metamorphic conformance suites — the testkit's whole repertoire
//! (view-graph/replay/cache/pipeline differentials, renumbering and port
//! metamorphics, lift projections, adversarial schedules, round-cap
//! negatives) over the seeded generator stream, one suite per algorithm.
//!
//! Knobs: `ANONET_TESTKIT_SEED`, `ANONET_TESTKIT_CASES`,
//! `ANONET_ADVERSARY` (`fair`/`reverse`/`skewed`/`shuffled`/`mixed`), and
//! `ANONET_TESTKIT_REPLAY='tc1:…'` to re-run a printed failure.

use anonet::algorithms::coloring::RandomizedColoring;
use anonet::algorithms::matching::{MatchingProblem, RandomizedMatching};
use anonet::algorithms::mis::RandomizedMis;
use anonet::algorithms::problems::{GreedyColoringProblem, MisProblem};
use anonet::testkit::{run_leader_suite, Suite};

#[test]
fn mis_conformance() {
    Suite::new("mis", RandomizedMis::new(), MisProblem, |_| ()).with_astar().run(18);
}

#[test]
fn coloring_conformance() {
    // RandomizedColoring draws 16-bit candidates, so the exhaustive A_∞
    // enumeration is out of reach — the view-graph oracle covers it.
    Suite::new("coloring", RandomizedColoring::new(), GreedyColoringProblem, |_| ()).run(18);
}

#[test]
fn matching_conformance() {
    // The matching algorithm's input *is* its color. Matching draws a
    // proposal direction and an acceptance bit per phase, so its literal
    // A_* enumeration is only feasible on two-class quotients.
    Suite::new("matching", RandomizedMatching::<u32>::new(), MatchingProblem, |c| c)
        .with_astar_tiny()
        .run(18);
}

#[test]
fn leader_conformance() {
    run_leader_suite(30);
}

#[test]
fn astar_thread_sweep_is_byte_identical_on_concrete_instances() {
    // The memoized A_* engine, fanned across 1/2/8 worker threads, must
    // reproduce the sequential fast path (and hence, via the
    // astar-fast-vs-reference oracle, the literal Figure-3 reference)
    // byte-for-byte on concrete MIS instances.
    use anonet::core::astar::{run_astar, run_astar_threaded, AStarConfig};
    use anonet::graph::{generators, lift};

    let cfg = AStarConfig::default();
    let triangle =
        generators::cycle(3).unwrap().with_labels(vec![((), 1u32), ((), 2), ((), 3)]).unwrap();
    let c6 = lift::cyclic_cycle_lift(3, 2)
        .unwrap()
        .lift_labels(&[((), 1u32), ((), 2), ((), 3)])
        .unwrap();
    let p2 = generators::path(2).unwrap().with_labels(vec![((), 1u32), ((), 2)]).unwrap();

    for inst in [triangle, c6, p2] {
        let sequential = run_astar(&RandomizedMis::new(), &MisProblem, &inst, &cfg).unwrap();
        for threads in [1usize, 2, 8] {
            let par = run_astar_threaded(
                &RandomizedMis::new(),
                &MisProblem,
                &inst,
                &cfg,
                threads,
                &anonet::obs::noop(),
            )
            .unwrap();
            assert_eq!(par.outputs, sequential.outputs, "{threads} threads");
            assert_eq!(par.output_phase, sequential.output_phase, "{threads} threads");
            assert_eq!(par.phases_used, sequential.phases_used, "{threads} threads");
            assert_eq!(par.equivalent_rounds, sequential.equivalent_rounds, "{threads} threads");
            assert_eq!(par.final_bits, sequential.final_bits, "{threads} threads");
        }
    }
}
