//! Cross-crate integration: the persistent store must be a pure
//! performance layer under the batch engine, exactly like the in-memory
//! cache it backs. Two legs:
//!
//! * the testkit persistence differential oracle — (memory) ≡ (fresh
//!   persistent) ≡ (crash-recovered persistent) over a seeded campaign;
//! * batch-level equivalence — `derandomize_batch` over a
//!   `PersistentDerandCache` matches the plain in-memory cache byte for
//!   byte across thread counts, and a second warm-started "process"
//!   answers everything from disk.

use std::sync::Arc;

use anonet::algorithms::mis::RandomizedMis;
use anonet::batch::{BatchScheduler, DerandCache, PersistentDerandCache};
use anonet::core::batch::derandomize_batch;
use anonet::core::{DerandomizedRun, SearchStrategy};
use anonet::graph::{Label, LabeledGraph};
use anonet::runtime::ExecConfig;
use anonet::testkit::{build_instance, check_persistence, default_persistence_cases, TestCase};

fn colored_case(replay: &str) -> LabeledGraph<((), u32)> {
    let case: TestCase = replay.parse().expect("replay strings are written in-test");
    let inst = build_instance(&case).expect("generator succeeds");
    inst.colors.map_labels(|&c| ((), c))
}

/// Lift towers over C3 and C4 plus one prime graph: three quotient
/// classes, so a shared cache must collapse eight searches into three.
fn families() -> Vec<LabeledGraph<((), u32)>> {
    let mut out = Vec::new();
    for m in [1usize, 2, 3] {
        out.push(colored_case(&format!(
            "tc1:family=cycle,n=3,seed=0,color=greedy,lift={m},adv=fair"
        )));
        out.push(colored_case(&format!(
            "tc1:family=cycle,n=4,seed=0,color=greedy,lift={m},adv=fair"
        )));
    }
    out.push(colored_case("tc1:family=wheel,n=7,seed=1,color=greedy,lift=1,adv=fair"));
    out
}

fn run_bytes<O: Label>(run: &DerandomizedRun<O>) -> Vec<u8> {
    let mut out = Vec::new();
    for o in &run.outputs {
        o.encode(&mut out);
    }
    out.extend_from_slice(&(run.quotient_nodes as u64).to_le_bytes());
    out.extend_from_slice(&(run.multiplicity as u64).to_le_bytes());
    out.extend_from_slice(&(run.simulation_rounds as u64).to_le_bytes());
    out.extend_from_slice(&(run.attempts as u64).to_le_bytes());
    for tape in run.assignment.tapes() {
        out.extend_from_slice(&(tape.len() as u64).to_le_bytes());
        out.extend(tape.iter().map(u8::from));
    }
    out
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("anonet-store-integration-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn batch_bytes(
    instances: &[LabeledGraph<((), u32)>],
    threads: usize,
    cache: &Arc<DerandCache>,
) -> Vec<Vec<u8>> {
    let batch = derandomize_batch(
        &RandomizedMis::new(),
        instances,
        SearchStrategy::default(),
        &ExecConfig::default(),
        &BatchScheduler::with_threads(threads),
        Some(cache),
    );
    assert_eq!(batch.stats.succeeded, instances.len());
    batch.results.iter().map(|r| run_bytes(r.ok().expect("batch job succeeds"))).collect()
}

/// The testkit oracle over its default campaign, driven from the facade.
#[test]
fn persistence_differential_oracle_holds() {
    let dir = scratch("oracle");
    let report =
        check_persistence(&default_persistence_cases(), &dir).unwrap_or_else(|f| panic!("{f}"));
    assert!(report.torn_truncations >= 1, "the simulated crash must actually tear a segment");
    assert!(report.warmed >= 1, "the survivor must preload from disk");
    assert!(
        report.crashed.assignment_misses < report.memory.assignment_misses,
        "the recovered first half must spare the survivor searches"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `derandomize_batch` over the persistent cache is byte-identical to
/// the in-memory cache across thread counts, and a warm-started second
/// process over the same directory answers every lookup.
#[test]
fn batched_persistent_cache_matches_memory_and_warm_starts() {
    let dir = scratch("batch");
    let instances = families();

    let memory_cache = Arc::new(DerandCache::new());
    let memory = batch_bytes(&instances, 1, &memory_cache);

    for threads in [1usize, 4] {
        let run_dir = dir.join(format!("t{threads}"));

        // Process 1: cold persistent store, batch run, write-through.
        let pdc = PersistentDerandCache::open(&run_dir).expect("open store");
        let cold = batch_bytes(&instances, threads, pdc.cache());
        assert_eq!(memory, cold, "persistent cache ({threads} threads) diverged from memory");
        let stats = pdc.cache_stats();
        assert_eq!(
            stats.assignment_hits + stats.assignment_misses,
            instances.len() as u64,
            "one lookup per job"
        );
        assert_eq!(stats.disk_errors, 0);
        pdc.flush().expect("flush store");
        drop(pdc);

        // Process 2: reopen, warm, re-run — all hits, zero searches.
        let pdc = PersistentDerandCache::open(&run_dir).expect("reopen store");
        assert!(pdc.store_stats().recovered_records >= 3, "reopen must replay the segments");
        let warmed = pdc.warm(usize::MAX).expect("warm from disk");
        assert!(warmed >= 3, "warm() must preload all three quotient classes, got {warmed}");
        let warm = batch_bytes(&instances, threads, pdc.cache());
        assert_eq!(memory, warm, "warm-started run ({threads} threads) diverged from memory");
        let stats = pdc.cache_stats();
        assert_eq!(stats.assignment_misses, 0, "a warmed process must never search");
        assert_eq!(stats.assignment_hits, instances.len() as u64);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The facade re-exports the store crate: the raw `Store` is reachable
/// as `anonet::store::Store` and round-trips bytes.
#[test]
fn facade_exposes_the_raw_store() {
    let dir = scratch("facade");
    let store =
        anonet::store::Store::open(anonet::store::StoreConfig::new(&dir)).expect("open raw store");
    store.put(0, b"s(G*)", b"assignment").expect("put");
    assert_eq!(store.get(0, b"s(G*)").expect("get"), Some(b"assignment".to_vec()));
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
