//! Cross-crate integration: the theorem statements themselves, executed.

use anonet::algorithms::mis::RandomizedMis;
use anonet::algorithms::problems::MisProblem;
use anonet::core::astar::{run_astar, AStarConfig};
use anonet::core::infinity::solve_infinity;
use anonet::core::{Derandomizer, SearchStrategy};
use anonet::factor::lifting::{pull_back_assignment, run_lifted_oblivious};
use anonet::factor::prime::{prime_factor, verify_unique_prime_factor};
use anonet::factor::FactorizingMap;
use anonet::graph::{coloring, generators, lift, BitString, LabeledGraph};
use anonet::runtime::{BitAssignment, ExecConfig, Problem};
use anonet::views::{quotient, ViewMode};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn colored_cycle_instance(n: usize) -> LabeledGraph<((), u32)> {
    let labels: Vec<((), u32)> = (0..n).map(|i| ((), (i % 3) as u32 + 1)).collect();
    generators::cycle(n).unwrap().with_labels(labels).unwrap()
}

#[test]
fn theorem1_faithful_astar_and_converged_derandomizer_are_both_valid() {
    let inst = colored_cycle_instance(3);
    let plain = inst.map_labels(|_| ());

    let astar =
        run_astar(&RandomizedMis::new(), &MisProblem, &inst, &AStarConfig::default()).unwrap();
    assert!(MisProblem.is_valid_output(&plain, &astar.outputs));

    let derand = Derandomizer::new(RandomizedMis::new())
        .with_strategy(SearchStrategy::Exhaustive { max_total_bits: 24 })
        .run(&inst)
        .unwrap();
    assert!(MisProblem.is_valid_output(&plain, &derand.outputs));
}

#[test]
fn theorem2_quotient_simulation_lifts_to_valid_outputs_on_products() {
    for n in [3usize, 6, 12] {
        let inst = colored_cycle_instance(n);
        let run = solve_infinity(&RandomizedMis::new(), &inst, 24, &ExecConfig::default()).unwrap();
        assert_eq!(run.quotient_nodes, 3);
        let plain = inst.map_labels(|_| ());
        assert!(MisProblem.is_valid_output(&plain, &run.outputs), "n = {n}");
    }
}

#[test]
fn theorem3_refinement_depth_never_exceeds_n() {
    use anonet::views::norris::norris_report;
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    for _ in 0..10 {
        let g = generators::gnp_connected(14, 0.2, &mut rng).unwrap();
        let report = norris_report(&g.with_uniform_label(0u32), ViewMode::Portless);
        assert!(report.holds(), "Norris bound violated: {report:?}");
    }
}

#[test]
fn lemma3_unique_prime_factor_through_lift_towers() {
    // base -> lift(base, 2) -> lift(lift, 2): all three share one prime factor.
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let base = generators::cycle(5).unwrap();
    let colored = coloring::greedy_two_hop_coloring(&base);
    let l1 = lift::random_connected_lift(&base, 2, 300, &mut rng).unwrap();
    let p1 = l1.lift_labels(colored.labels()).unwrap();
    let l2 = lift::random_connected_lift(l1.graph(), 2, 300, &mut rng).unwrap();
    let p2 = l2.lift_labels(p1.labels()).unwrap();

    assert!(verify_unique_prime_factor(&p1, &colored, ViewMode::Portless).is_ok());
    assert!(verify_unique_prime_factor(&p2, &colored, ViewMode::Portless).is_ok());
    assert!(verify_unique_prime_factor(&p2, &p1, ViewMode::Portless).is_ok());
    assert_eq!(prime_factor(&p2, ViewMode::Portless).unwrap().map().multiplicity(), 4);
}

#[test]
fn lifting_lemma_holds_for_random_assignments() {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let base = generators::petersen();
    let colored = coloring::greedy_two_hop_coloring(&base).map_labels(|_| ());
    let l = lift::random_connected_lift(&base, 3, 300, &mut rng).unwrap();
    let product = l.lift_labels(colored.labels()).unwrap();
    let images: Vec<usize> = l.projection().iter().map(|v| v.index()).collect();
    let map = FactorizingMap::new(&product, &colored, images).unwrap();

    for _ in 0..3 {
        let tapes: Vec<BitString> = (0..colored.node_count())
            .map(|_| (0..40).map(|_| rng.gen::<bool>()).collect())
            .collect();
        let assignment = BitAssignment::new(tapes);
        // Pull-back sanity.
        let pulled = pull_back_assignment(&map, &assignment);
        assert_eq!(pulled.len(), product.node_count());
        // Node-by-node agreement, verified internally.
        run_lifted_oblivious(
            &RandomizedMis::new(),
            &product,
            &colored,
            &map,
            &assignment,
            &ExecConfig::default(),
        )
        .expect("lifting lemma must hold");
    }
}

#[test]
fn derandomizer_sees_through_arbitrary_lift_presentations() {
    // Permuting how a lift is presented must not change the lifted answer
    // along the projection (everything is view-derived).
    let mut rng = ChaCha8Rng::seed_from_u64(33);
    let base_inst = colored_cycle_instance(3);
    let base_graph = generators::cycle(3).unwrap();
    let d = Derandomizer::new(RandomizedMis::new());
    let base_run = d.run(&base_inst).unwrap();
    for m in [2usize, 3, 4] {
        let l = lift::random_connected_lift(&base_graph, m, 300, &mut rng).unwrap();
        let inst = l.lift_labels(base_inst.labels()).unwrap();
        let run = d.run(&inst).unwrap();
        assert_eq!(run.quotient_nodes, 3);
        for (v, &img) in l.projection().iter().enumerate() {
            assert_eq!(run.outputs[v], base_run.outputs[img.index()], "m={m}, node {v}");
        }
    }
}

#[test]
fn derandomized_matching_lifts_edge_by_edge() {
    // Maximal matching has *relational* outputs (partner colors); its
    // derandomization exercises output lifting beyond per-node labels.
    use anonet::algorithms::matching::{MatchingProblem, RandomizedMatching};
    let mut rng = ChaCha8Rng::seed_from_u64(44);
    for base in [generators::cycle(5).unwrap(), generators::petersen()] {
        let colored = coloring::greedy_two_hop_coloring(&base);
        for m in [2usize, 3] {
            let l = lift::random_connected_lift(&base, m, 300, &mut rng).unwrap();
            let product_colors = l.lift_labels(colored.labels()).unwrap();
            let inst = product_colors.map_labels(|&c| (c, c));
            let run = Derandomizer::new(RandomizedMatching::<u32>::new()).run(&inst).unwrap();
            assert!(
                MatchingProblem.is_valid_output(&product_colors, &run.outputs),
                "invalid lifted matching on a {m}-lift"
            );
            assert_eq!(run.quotient_nodes, base.node_count());
        }
    }
}

#[test]
fn quotient_of_two_hop_colored_graph_is_always_simple_and_factor() {
    // Lemma 2 as a sweep over families with greedy colorings.
    let graphs = vec![
        generators::cycle(10).unwrap(),
        generators::path(9).unwrap(),
        generators::petersen(),
        generators::hypercube(3).unwrap(),
        generators::grid(3, 4, true).unwrap(),
    ];
    for g in graphs {
        let colored = coloring::greedy_two_hop_coloring(&g);
        let q = quotient(&colored, ViewMode::Portless).expect("2-hop colored quotients are simple");
        // prime_factor re-validates the three factor properties.
        prime_factor(&colored, ViewMode::Portless).expect("projection is a factorizing map");
        assert!(q.graph().graph().is_connected());
    }
}
