//! End-to-end acceptance for the trace toolchain: a soak campaign traced
//! through the JSONL recorder must come back out of `anonet-trace` as one
//! causal tree — a valid Perfetto export, a folded flamegraph, and a
//! critical-path report with exactly one root (`soak_campaign`) and zero
//! orphans — proving span parentage survives every thread hop from the
//! campaign driver through the batch scheduler's workers to the store.

use std::sync::Arc;

use anonet::obs::{Json, JsonlRecorder, SharedRecorder};
use anonet::soak::{run_campaign_observed, CampaignConfig};
use anonet::trace::{critical, diff, flame, perfetto, Trace};

fn traced_smoke_campaign() -> Trace {
    let (jsonl, buf) = JsonlRecorder::buffered();
    let jsonl = Arc::new(jsonl);
    let shared: SharedRecorder = jsonl.clone();
    run_campaign_observed(&CampaignConfig::smoke(), &shared).expect("smoke campaign runs");
    drop(shared);
    drop(jsonl); // drop flushes the writer
    Trace::parse(&buf.contents()).expect("trace parses")
}

#[test]
fn campaign_trace_survives_the_whole_toolchain() {
    let trace = traced_smoke_campaign();

    // One causal tree: the campaign is the only root, nothing dangles.
    let roots = trace.roots();
    assert_eq!(roots.len(), 1, "exactly one root span");
    assert_eq!(roots[0].name, "soak_campaign");
    assert!(trace.orphans().is_empty(), "no span lost its parent across thread hops");
    assert_eq!(trace.detached_attrs, 0);

    // The tree reaches through every layer: cells under the campaign,
    // scheduler jobs under the cells, the store recovery under the
    // campaign — all as `/`-joined paths.
    let paths: Vec<&str> = trace.spans.iter().map(|s| s.path.as_str()).collect();
    assert!(paths.contains(&"soak_campaign/soak_cell"));
    assert!(paths.contains(&"soak_campaign/soak_cell/batch_run/job"));
    assert!(paths.iter().any(|p| p.starts_with("soak_campaign/store_open")));

    // Every cell root carries its replay string as an attribute.
    let cells: Vec<_> = trace.spans.iter().filter(|s| s.name == "soak_cell").collect();
    assert_eq!(cells.len(), 3, "smoke grid has three cells");
    for cell in &cells {
        let replay = cell.attr("replay").and_then(Json::as_str).expect("replay attr");
        assert!(replay.starts_with("tc1:"), "replay string on the cell span: {replay}");
    }

    // Perfetto export: re-parses as JSON, one "X" event per span.
    let exported = perfetto::export(&trace).pretty();
    let parsed = Json::parse(&exported).expect("Perfetto export is valid JSON");
    let events = parsed.get("traceEvents").and_then(Json::items).expect("traceEvents array");
    let complete =
        events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).count();
    assert_eq!(complete, trace.spans.len());

    // Flamegraph: folded stacks cover the deep path and carry self time.
    let stacks = flame::folded_stacks(&trace);
    assert!(stacks
        .iter()
        .any(|(stack, _)| stack.starts_with("soak_campaign;soak_cell;batch_run;job")));
    assert!(stacks.iter().map(|(_, v)| v).sum::<u64>() > 0);

    // Critical path: rooted at the campaign, descending into real work,
    // with the hygiene numbers the gate reads.
    let report = critical::critical_path(&trace);
    assert_eq!(report.roots, 1);
    assert_eq!(report.orphans, 0);
    assert_eq!(report.in_flight, 0);
    assert_eq!(report.chain[0].name, "soak_campaign");
    assert!(report.chain.len() >= 2, "chain descends below the root");
    assert_eq!(report.chain_wall_us, report.chain[0].wall_us);
    let json = critical::to_json(&report);
    let reparsed = Json::parse(&json.pretty()).expect("critical report serializes");
    assert_eq!(reparsed.get("orphans").and_then(Json::as_f64), Some(0.0));

    // Diff against itself is all-ones.
    let rows = diff::diff_traces(&trace, &trace);
    assert!(!rows.is_empty());
    for row in &rows {
        assert_eq!(row.count, row.base_count, "self-diff counts match on {}", row.path);
        assert_eq!(row.ratio(), 1.0, "self-diff ratio is 1.0 on {}", row.path);
    }
}
