//! Property-based tests (proptest) over random graphs, colorings, and
//! tapes: the invariants the whole construction rests on.
//!
//! Instances come from the testkit's seeded generator layer
//! ([`anonet::testkit::flavored_graph`]); each property body is a plain
//! function so historic proptest shrinks can be pinned as explicit
//! regression cases (the vendored proptest does not read
//! `properties.proptest-regressions`).

use anonet::algorithms::mis::RandomizedMis;
use anonet::algorithms::problems::{MisProblem, TwoHopColoringProblem};
use anonet::algorithms::two_hop_coloring::TwoHopColoring;
use anonet::core::{Derandomizer, SearchStrategy};
use anonet::graph::{coloring, BitString, Graph, LabeledGraph};
use anonet::runtime::{run, BitAssignment, ExecConfig, Oblivious, Problem, RngSource, TapeSource};
use anonet::testkit::flavored_graph;
use anonet::views::{
    canonical_view_encoding, norris::norris_report, quotient, Refinement, RefinementEngine,
    ViewMode, ViewTree,
};
use proptest::prelude::*;

/// A random connected graph from a seed: mixes families for diversity.
fn arbitrary_graph(seed: u64, n: usize, flavor: u8) -> Graph {
    flavored_graph(seed, n, flavor).expect("flavored generators accept any seed")
}

/// The Las-Vegas 2-hop coloring always outputs a valid 2-hop coloring.
fn check_two_hop_coloring_is_valid(seed: u64, n: usize, flavor: u8) {
    let g = arbitrary_graph(seed, n, flavor);
    let net = g.with_uniform_label(());
    let exec = run(
        &Oblivious(TwoHopColoring::new()),
        &net,
        &mut RngSource::seeded(seed),
        &ExecConfig::default(),
    )
    .expect("no runtime error");
    assert!(exec.is_successful());
    let outputs: Vec<BitString> = exec.outputs_unwrapped();
    assert!(TwoHopColoringProblem.is_valid_output(&net, &outputs));
}

/// Quotients of greedily 2-hop colored graphs are simple factors, and
/// fibers have uniform size.
fn check_quotient_is_uniform_fiber_factor(seed: u64, n: usize, flavor: u8) {
    let g = arbitrary_graph(seed, n, flavor);
    let colored = coloring::greedy_two_hop_coloring(&g);
    let q = quotient(&colored, ViewMode::Portless).expect("2-hop colored");
    assert!(q.multiplicity().is_some());
    assert_eq!(q.multiplicity().unwrap() * q.graph().node_count(), g.node_count());
}

/// Norris: refinement stabilizes within n - 1 rounds.
fn check_norris_bound(seed: u64, n: usize, flavor: u8) {
    let g = arbitrary_graph(seed, n, flavor).with_uniform_label(0u32);
    assert!(norris_report(&g, ViewMode::Portless).holds());
    assert!(norris_report(&g, ViewMode::PortAware).holds());
}

/// Port-aware refinement refines the portless one.
fn check_port_aware_refines_portless(seed: u64, n: usize, flavor: u8) {
    let g = arbitrary_graph(seed, n, flavor).with_uniform_label(0u32);
    let coarse = Refinement::compute(&g, ViewMode::Portless);
    let fine = Refinement::compute(&g, ViewMode::PortAware);
    for u in 0..g.node_count() {
        for v in 0..g.node_count() {
            if fine.classes()[u] == fine.classes()[v] {
                assert_eq!(coarse.classes()[u], coarse.classes()[v]);
            }
        }
    }
}

/// The derandomizer produces valid, deterministic MIS outputs on
/// greedily colored random graphs.
fn check_derandomized_mis(seed: u64, n: usize, flavor: u8) {
    let g = arbitrary_graph(seed, n, flavor);
    let colored = coloring::greedy_two_hop_coloring(&g);
    let inst = g.with_uniform_label(()).zip(&colored).expect("same graph");
    let d = Derandomizer::new(RandomizedMis::new())
        .with_strategy(SearchStrategy::Seeded { max_attempts: 64 });
    let a = d.run(&inst).expect("derandomization succeeds");
    let b = d.run(&inst).expect("derandomization succeeds");
    assert_eq!(&a.outputs, &b.outputs);
    let plain = g.with_uniform_label(());
    assert!(MisProblem.is_valid_output(&plain, &a.outputs));
}

/// The Las-Vegas maximal matching always outputs a valid matching.
fn check_matching_is_valid(seed: u64, n: usize, flavor: u8) {
    use anonet::algorithms::matching::{MatchingProblem, RandomizedMatching};
    let g = arbitrary_graph(seed, n, flavor);
    let net = coloring::greedy_two_hop_coloring(&g);
    let exec = run(
        &Oblivious(RandomizedMatching::<u32>::new()),
        &net,
        &mut RngSource::seeded(seed),
        &ExecConfig::default(),
    )
    .expect("no runtime error");
    assert!(exec.is_successful());
    assert!(MatchingProblem.is_valid_output(&net, &exec.outputs_unwrapped()));
}

/// Replaying an execution's consumed tapes reproduces it exactly
/// (the engine is a pure function of the bit source).
fn check_execution_replays_from_tapes(seed: u64, n: usize, flavor: u8) {
    let g = arbitrary_graph(seed, n, flavor);
    let net = g.with_uniform_label(());
    let mut src = RngSource::seeded(seed);
    let exec = run(&Oblivious(RandomizedMis::new()), &net, &mut src, &ExecConfig::default())
        .expect("no runtime error");
    assert!(exec.is_successful());

    // Reconstruct per-node tapes by re-running the same seeded source.
    let mut replay_src = RngSource::seeded(seed);
    use anonet::runtime::RandomSource;
    let mut tapes = vec![BitString::new(); g.node_count()];
    for round in 1..=exec.rounds() {
        for v in g.nodes() {
            let halted_before = exec.halt_rounds()[v.index()].is_some_and(|h| h < round);
            if !halted_before {
                let bit = replay_src.bit(v, round).expect("rng never exhausts");
                tapes[v.index()].push(bit);
            }
        }
    }
    let mut tape_src = TapeSource::new(BitAssignment::new(tapes));
    let replay = run(&Oblivious(RandomizedMis::new()), &net, &mut tape_src, &ExecConfig::default())
        .expect("no runtime error");
    assert_eq!(replay.outputs(), exec.outputs());
}

/// The `A_*` pool-memo key — `(p_capped, canonical universe encoding)`
/// per node — is a function of the node's ball *label set* only, so it
/// must follow node renumberings (the key vector is permuted, nothing
/// else) and ignore port re-permutations entirely. This is what makes
/// the memo sound on anonymous instances: two presentations of the same
/// network always share their pools.
fn check_pool_memo_key_invariance(seed: u64, n: usize, flavor: u8) {
    use anonet::core::astar_cache::pool_keys;
    use anonet::graph::lift::Perm;
    use rand::SeedableRng;

    let g = arbitrary_graph(seed, n, flavor);
    let colored = coloring::greedy_two_hop_coloring(&g);
    // The A_* label shape: ((input, color), bitstring), at phase start.
    let ip = colored.map_labels(|&c| (((), c), BitString::new()));
    let n = ip.node_count();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    for p in 1..=3usize {
        let keys = pool_keys(&ip, p, 4);
        let perm = Perm::random(n, &mut rng);
        let renumbered = ip.renumber(&perm).expect("perm has matching degree");
        let keys_renumbered = pool_keys(&renumbered, p, 4);
        for v in 0..n {
            assert_eq!(
                keys[v],
                keys_renumbered[perm.apply(v)],
                "phase {p}: memo key did not follow node {v} through the renumbering"
            );
        }
        let shuffled = ip.with_shuffled_ports(&mut rng);
        assert_eq!(keys, pool_keys(&shuffled, p, 4), "phase {p}: memo keys saw port numbers");
    }
}

/// The incremental refinement engine tracks from-scratch refinement
/// exactly — identical canonical class ids and stabilization depth —
/// through a seeded mutation schedule that mixes monotone tag
/// refinements (the incremental fast path) with a non-monotone relabel
/// (the detect-and-rebuild path), in both view modes.
fn check_incremental_refinement_matches_scratch(seed: u64, n: usize, flavor: u8) {
    let g = arbitrary_graph(seed, n, flavor);
    let n = g.node_count();
    let mix = |x: u64| {
        let x = (x ^ seed).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (x ^ (x >> 29)).wrapping_mul(0xbf58_476d_1ce4_e5b9)
    };
    for mode in [ViewMode::Portless, ViewMode::PortAware] {
        let mut labels: Vec<(u32, u32)> = (0..n).map(|i| ((mix(i as u64) % 3) as u32, 0)).collect();
        let relabeled = |labels: &[(u32, u32)]| {
            LabeledGraph::new(g.clone(), labels.to_vec()).expect("label count matches")
        };
        let mut engine = RefinementEngine::new(&relabeled(&labels), mode);
        for phase in 1..=4u32 {
            let v = (mix(u64::from(phase) << 32) % n as u64) as usize;
            if phase < 4 {
                // Monotone: a fresh tag splits v out of its class.
                labels[v].1 = phase;
            } else {
                // Non-monotone: a base-color change can merge classes,
                // forcing the engine's exactness fallback.
                labels[v].0 = (labels[v].0 + 1) % 3;
                labels[v].1 = 0;
            }
            let g2 = relabeled(&labels);
            engine.update(&g2);
            let scratch = Refinement::compute(&g2, mode);
            assert_eq!(
                engine.classes(),
                scratch.classes(),
                "engine ids diverged ({mode:?}, phase {phase}, node {v})"
            );
            assert_eq!(engine.stabilization_depth(), scratch.stabilization_depth());
        }
    }
}

/// The arena encoder byte-matches the recursive `ViewTree` reference on
/// every node at depths 1–3, on greedily 2-hop colored instances.
fn check_arena_encoding_matches_view_tree(seed: u64, n: usize, flavor: u8) {
    let g = arbitrary_graph(seed, n, flavor);
    let colored = coloring::greedy_two_hop_coloring(&g);
    for depth in 1..=3usize {
        for v in colored.graph().nodes() {
            let reference = ViewTree::build(&colored, v, depth)
                .expect("small instances fit the budget")
                .canonical_encoding();
            let fast = canonical_view_encoding(&colored, v, depth)
                .expect("small instances fit the budget");
            assert_eq!(fast, reference, "node {} depth {depth}", v.index());
        }
    }
}

/// Historic shrink from `properties.proptest-regressions` (C3 via the
/// cycle flavor clamping n = 2 up to 3), pinned explicitly because the
/// vendored proptest ignores regression files.
#[test]
fn regression_seed_0_n_2_flavor_2() {
    check_two_hop_coloring_is_valid(0, 2, 2);
    check_quotient_is_uniform_fiber_factor(0, 2, 2);
    check_norris_bound(0, 2, 2);
    check_port_aware_refines_portless(0, 2, 2);
    check_derandomized_mis(0, 2, 2);
    check_matching_is_valid(0, 2, 2);
    check_execution_replays_from_tapes(0, 2, 2);
    check_pool_memo_key_invariance(0, 2, 2);
    check_incremental_refinement_matches_scratch(0, 2, 2);
    check_arena_encoding_matches_view_tree(0, 2, 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn two_hop_coloring_is_always_valid(seed in 0u64..5000, n in 2usize..14, flavor in 0u8..4) {
        check_two_hop_coloring_is_valid(seed, n, flavor);
    }

    #[test]
    fn quotient_is_a_uniform_fiber_factor(seed in 0u64..5000, n in 2usize..14, flavor in 0u8..4) {
        check_quotient_is_uniform_fiber_factor(seed, n, flavor);
    }

    #[test]
    fn norris_bound_holds(seed in 0u64..5000, n in 2usize..16, flavor in 0u8..4) {
        check_norris_bound(seed, n, flavor);
    }

    #[test]
    fn port_aware_refines_portless(seed in 0u64..5000, n in 2usize..12, flavor in 0u8..4) {
        check_port_aware_refines_portless(seed, n, flavor);
    }

    #[test]
    fn derandomized_mis_is_valid_and_deterministic(seed in 0u64..2000, n in 2usize..10, flavor in 0u8..4) {
        check_derandomized_mis(seed, n, flavor);
    }

    #[test]
    fn matching_is_always_valid(seed in 0u64..3000, n in 1usize..12, flavor in 0u8..4) {
        check_matching_is_valid(seed, n, flavor);
    }

    #[test]
    fn executions_replay_from_recorded_tapes(seed in 0u64..5000, n in 2usize..12, flavor in 0u8..4) {
        check_execution_replays_from_tapes(seed, n, flavor);
    }

    #[test]
    fn pool_memo_keys_are_presentation_invariant(seed in 0u64..5000, n in 2usize..12, flavor in 0u8..4) {
        check_pool_memo_key_invariance(seed, n, flavor);
    }

    #[test]
    fn incremental_refinement_matches_scratch(seed in 0u64..5000, n in 2usize..14, flavor in 0u8..4) {
        check_incremental_refinement_matches_scratch(seed, n, flavor);
    }

    #[test]
    fn arena_encodings_match_view_tree(seed in 0u64..5000, n in 2usize..12, flavor in 0u8..4) {
        check_arena_encoding_matches_view_tree(seed, n, flavor);
    }
}
