//! Property-based tests (proptest) over random graphs, colorings, and
//! tapes: the invariants the whole construction rests on.

use anonet::algorithms::mis::RandomizedMis;
use anonet::algorithms::problems::{MisProblem, TwoHopColoringProblem};
use anonet::algorithms::two_hop_coloring::TwoHopColoring;
use anonet::core::{Derandomizer, SearchStrategy};
use anonet::graph::{coloring, generators, BitString, Graph};
use anonet::runtime::{run, BitAssignment, ExecConfig, Oblivious, Problem, RngSource, TapeSource};
use anonet::views::{norris::norris_report, quotient, Refinement, ViewMode};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A random connected graph from a seed: mixes families for diversity.
fn arbitrary_graph(seed: u64, n: usize, flavor: u8) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match flavor % 4 {
        0 => generators::gnp_connected(n, 0.3, &mut rng).expect("valid"),
        1 => generators::random_tree(n, &mut rng).expect("valid"),
        2 => generators::cycle(n.max(3)).expect("valid"),
        _ => generators::gnp_connected(n, 0.6, &mut rng).expect("valid"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Las-Vegas 2-hop coloring always outputs a valid 2-hop coloring.
    #[test]
    fn two_hop_coloring_is_always_valid(seed in 0u64..5000, n in 2usize..14, flavor in 0u8..4) {
        let g = arbitrary_graph(seed, n, flavor);
        let net = g.with_uniform_label(());
        let exec = run(
            &Oblivious(TwoHopColoring::new()),
            &net,
            &mut RngSource::seeded(seed),
            &ExecConfig::default(),
        ).expect("no runtime error");
        prop_assert!(exec.is_successful());
        let outputs: Vec<BitString> = exec.outputs_unwrapped();
        prop_assert!(TwoHopColoringProblem.is_valid_output(&net, &outputs));
    }

    /// Quotients of greedily 2-hop colored graphs are simple factors, and
    /// fibers have uniform size.
    #[test]
    fn quotient_is_a_uniform_fiber_factor(seed in 0u64..5000, n in 2usize..14, flavor in 0u8..4) {
        let g = arbitrary_graph(seed, n, flavor);
        let colored = coloring::greedy_two_hop_coloring(&g);
        let q = quotient(&colored, ViewMode::Portless).expect("2-hop colored");
        prop_assert!(q.multiplicity().is_some());
        prop_assert_eq!(
            q.multiplicity().unwrap() * q.graph().node_count(),
            g.node_count()
        );
    }

    /// Norris: refinement stabilizes within n - 1 rounds.
    #[test]
    fn norris_bound_holds(seed in 0u64..5000, n in 2usize..16, flavor in 0u8..4) {
        let g = arbitrary_graph(seed, n, flavor).with_uniform_label(0u32);
        prop_assert!(norris_report(&g, ViewMode::Portless).holds());
        prop_assert!(norris_report(&g, ViewMode::PortAware).holds());
    }

    /// Port-aware refinement refines the portless one.
    #[test]
    fn port_aware_refines_portless(seed in 0u64..5000, n in 2usize..12, flavor in 0u8..4) {
        let g = arbitrary_graph(seed, n, flavor).with_uniform_label(0u32);
        let coarse = Refinement::compute(&g, ViewMode::Portless);
        let fine = Refinement::compute(&g, ViewMode::PortAware);
        for u in 0..g.node_count() {
            for v in 0..g.node_count() {
                if fine.classes()[u] == fine.classes()[v] {
                    prop_assert_eq!(coarse.classes()[u], coarse.classes()[v]);
                }
            }
        }
    }

    /// The derandomizer produces valid, deterministic MIS outputs on
    /// greedily colored random graphs.
    #[test]
    fn derandomized_mis_is_valid_and_deterministic(seed in 0u64..2000, n in 2usize..10, flavor in 0u8..4) {
        let g = arbitrary_graph(seed, n, flavor);
        let colored = coloring::greedy_two_hop_coloring(&g);
        let inst = g.with_uniform_label(()).zip(&colored).expect("same graph");
        let d = Derandomizer::new(RandomizedMis::new())
            .with_strategy(SearchStrategy::Seeded { max_attempts: 64 });
        let a = d.run(&inst).expect("derandomization succeeds");
        let b = d.run(&inst).expect("derandomization succeeds");
        prop_assert_eq!(&a.outputs, &b.outputs);
        let plain = g.with_uniform_label(());
        prop_assert!(MisProblem.is_valid_output(&plain, &a.outputs));
    }

    /// The Las-Vegas maximal matching always outputs a valid matching.
    #[test]
    fn matching_is_always_valid(seed in 0u64..3000, n in 1usize..12, flavor in 0u8..4) {
        use anonet::algorithms::matching::{MatchingProblem, RandomizedMatching};
        let g = arbitrary_graph(seed, n, flavor);
        let net = coloring::greedy_two_hop_coloring(&g);
        let exec = run(
            &Oblivious(RandomizedMatching::<u32>::new()),
            &net,
            &mut RngSource::seeded(seed),
            &ExecConfig::default(),
        ).expect("no runtime error");
        prop_assert!(exec.is_successful());
        prop_assert!(MatchingProblem.is_valid_output(&net, &exec.outputs_unwrapped()));
    }

    /// Replaying an execution's consumed tapes reproduces it exactly
    /// (the engine is a pure function of the bit source).
    #[test]
    fn executions_replay_from_recorded_tapes(seed in 0u64..5000, n in 2usize..12, flavor in 0u8..4) {
        let g = arbitrary_graph(seed, n, flavor);
        let net = g.with_uniform_label(());
        let mut src = RngSource::seeded(seed);
        let exec = run(&Oblivious(RandomizedMis::new()), &net, &mut src, &ExecConfig::default())
            .expect("no runtime error");
        prop_assert!(exec.is_successful());

        // Reconstruct per-node tapes by re-running the same seeded source.
        let mut replay_src = RngSource::seeded(seed);
        use anonet::runtime::RandomSource;
        let mut tapes = vec![BitString::new(); g.node_count()];
        for round in 1..=exec.rounds() {
            for v in g.nodes() {
                let halted_before =
                    exec.halt_rounds()[v.index()].is_some_and(|h| h < round);
                if !halted_before {
                    let bit = replay_src.bit(v, round).expect("rng never exhausts");
                    tapes[v.index()].push(bit);
                }
            }
        }
        let mut tape_src = TapeSource::new(BitAssignment::new(tapes));
        let replay = run(&Oblivious(RandomizedMis::new()), &net, &mut tape_src, &ExecConfig::default())
            .expect("no runtime error");
        prop_assert_eq!(replay.outputs(), exec.outputs());
    }
}
