//! # anonet — Anonymous Networks: Randomization = 2-Hop Coloring
//!
//! Facade crate re-exporting the `anonet` workspace: a full reproduction of
//! Emek, Pfister, Seidel, Wattenhofer, *"Anonymous Networks: Randomization
//! = 2-Hop Coloring"*, PODC 2014.
//!
//! See the individual crates for details:
//!
//! * [`graph`] — labeled graphs, ports, colorings, generators, lifts, isomorphism
//! * [`runtime`] — the synchronous anonymous message-passing model
//! * [`views`] — local views `L_d(v)`, refinement, the finite view graph `G_*`
//! * [`factor`] — factor/product machinery, the lifting lemma, fibrations
//! * [`algorithms`] — randomized anonymous algorithms (2-hop coloring, MIS, …)
//! * [`core`] — the paper's derandomization: `A_∞`, `A_*`, and the Theorem-1 pipeline
//! * [`batch`] — concurrent batch execution with a content-addressed derandomization cache
//! * [`store`] — persistent, sharded, crash-safe backing store for the derandomization cache
//! * [`obs`] — zero-dependency causal tracing, metrics, and profiling (spans, counters, recorders)
//! * [`trace`] — trace analysis toolchain: Perfetto export, flamegraphs, critical paths, diffs
//! * [`soak`] — seeded soak campaigns and the perf-regression sentinel
//! * [`testkit`] — metamorphic conformance harness: adversarial schedulers, differential oracles

#![forbid(unsafe_code)]

pub use anonet_algorithms as algorithms;
pub use anonet_batch as batch;
pub use anonet_core as core;
pub use anonet_factor as factor;
pub use anonet_graph as graph;
pub use anonet_obs as obs;
pub use anonet_runtime as runtime;
pub use anonet_soak as soak;
pub use anonet_store as store;
pub use anonet_testkit as testkit;
pub use anonet_trace as trace;
pub use anonet_views as views;
