//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, `#[test]` functions whose
//! arguments are drawn from integer range strategies (`lo..hi`), and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//! * cases are a **deterministic sweep** (seeded from the test name and case
//!   index), not adaptively generated — reruns explore identical inputs;
//! * there is **no shrinking**: a failing case reports the sampled
//!   arguments verbatim, which for pure-range strategies is just as
//!   actionable.
//!
//! Any `*.proptest-regressions` files are ignored.

pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use test_runner::ProptestConfig;

/// Per-case RNG: deterministic from (test name, case index).
#[doc(hidden)]
pub fn case_rng(test_name: &str, case: u32) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    rand::rngs::StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// The body of a proptest case: `Err` carries a `prop_assert!` message.
#[doc(hidden)]
pub type CaseResult = Result<(), String>;

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_prop(x in 0u64..100, n in 2usize..10) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::__run_cases!(config, $name, ($($arg in $strategy),+) $body);
            }
        )*
    };
    // Without a config header: default number of cases.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $crate::ProptestConfig::default();
                $crate::__run_cases!(config, $name, ($($arg in $strategy),+) $body);
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __run_cases {
    ($config:expr, $name:ident, ($($arg:ident in $strategy:expr),+) $body:block) => {
        for __case in 0..$config.cases {
            let mut __rng = $crate::case_rng(stringify!($name), __case);
            $(
                let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);
            )+
            let __result: $crate::CaseResult = (|| {
                $body
                Ok(())
            })();
            if let Err(msg) = __result {
                panic!(
                    "proptest case {}/{} of `{}` failed: {}\n  inputs: {}",
                    __case + 1,
                    $config.cases,
                    stringify!($name),
                    msg,
                    [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", "),
                );
            }
        }
    };
}

/// Asserts a condition inside a proptest case, reporting sampled inputs on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_sample_in_bounds(x in 3u64..10, n in 2usize..20, f in 0u8..3) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..20).contains(&n));
            prop_assert!(f < 3);
            prop_assert_eq!(x, x);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn sweeps_are_deterministic() {
        use crate::strategy::Strategy;
        let a: Vec<u64> =
            (0..8).map(|c| (0u64..1000).sample(&mut crate::case_rng("t", c))).collect();
        let b: Vec<u64> =
            (0..8).map(|c| (0u64..1000).sample(&mut crate::case_rng("t", c))).collect();
        assert_eq!(a, b);
    }
}
