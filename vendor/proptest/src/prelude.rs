//! The `proptest::prelude` re-exports tests import with `use
//! proptest::prelude::*`.

pub use crate::strategy::Strategy;
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
