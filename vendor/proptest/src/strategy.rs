//! Value strategies. Only integer ranges are supported — the forms the
//! workspace's property tests actually use.

use rand::{Rng, RngCore};

/// Something that can produce a sample value from an RNG.
pub trait Strategy {
    type Value: core::fmt::Debug + Clone;

    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                (&mut *rng).gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                (&mut *rng).gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A fixed value (the `Just` strategy).
#[derive(Clone, Debug)]
pub struct Just<T: Clone + core::fmt::Debug>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample<R: RngCore + ?Sized>(&self, _rng: &mut R) -> T {
        self.0.clone()
    }
}
