//! Test-runner configuration.

/// Subset of `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases swept per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep sweeps fast offline.
        ProptestConfig { cases: 64 }
    }
}
