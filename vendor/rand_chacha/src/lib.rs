//! Offline stand-in for `rand_chacha`.
//!
//! Exposes `ChaCha8Rng` / `ChaCha12Rng` / `ChaCha20Rng` type names with the
//! `SeedableRng` + `RngCore` interface the workspace uses. The stream is NOT
//! ChaCha — it is xoshiro256++ keyed from the same 32-byte seed (domain
//! separated per type) — but every consumer in this workspace only needs a
//! deterministic seeded stream, never interop with real ChaCha output.

use rand::{RngCore, SeedableRng, Xoshiro256};

macro_rules! chacha_standin {
    ($name:ident, $domain:literal) => {
        #[derive(Clone, Debug)]
        pub struct $name {
            core: Xoshiro256,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(mut seed: Self::Seed) -> Self {
                // Domain-separate the variants so ChaCha8Rng(seed) and
                // ChaCha20Rng(seed) still give distinct streams.
                seed[0] ^= $domain;
                $name { core: Xoshiro256::from_seed_bytes(seed) }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                (self.core.next_u64() >> 32) as u32
            }

            fn next_u64(&mut self) -> u64 {
                self.core.next_u64()
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let bytes = self.core.next_u64().to_le_bytes();
                    let n = chunk.len();
                    chunk.copy_from_slice(&bytes[..n]);
                }
            }
        }
    };
}

chacha_standin!(ChaCha8Rng, 0x08);
chacha_standin!(ChaCha12Rng, 0x0C);
chacha_standin!(ChaCha20Rng, 0x14);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_reproducible_and_domain_separated() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        let mut c = ChaCha20Rng::seed_from_u64(99);
        let mut diverged = false;
        for _ in 0..64 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            if x != c.next_u64() {
                diverged = true;
            }
        }
        assert!(diverged);
    }
}
