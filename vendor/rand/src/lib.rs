//! Offline, dependency-free stand-in for the subset of the `rand` 0.8 API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! path-patches `rand` to this crate (see `[workspace.dependencies]`).
//! It reproduces the *API* of `rand` 0.8 — `RngCore`, `Rng`, `SeedableRng`,
//! `rngs::StdRng`, `seq::SliceRandom`, `distributions::Standard` — but not
//! its exact bit streams: the backing generator is xoshiro256++ seeded via
//! SplitMix64. All consumers in this workspace only require deterministic,
//! well-distributed streams (seeded reproducibility), never a specific
//! stream, so this substitution is behavior-preserving for the test suite.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Core random-number generation trait (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A seedable generator (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64, like `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    fn gen_range<R>(&mut self, range: R) -> R::Output
    where
        R: SampleRange,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 uniform mantissa bits, exactly like rand's `Standard` for f64.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range from which a uniform sample can be drawn (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    type Output;
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(reject_sample(rng, span) as i64) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(reject_sample(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Unbiased uniform sample in `[0, span)` by rejection (Lemire-style).
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// SplitMix64 — used for seed expansion (same constants as `rand`).
#[derive(Clone, Debug)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ core shared by [`rngs::StdRng`] and the `rand_chacha`
/// stand-in. High-quality, tiny, and deterministic from its 32-byte seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    pub fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s.iter().all(|&w| w == 0) {
            s = [0x9E37_79B9_7F4A_7C15, 0xD1B5_4A32_D192_ED03, 0x8CB9_2BA7_2F3D_8DD7, 1];
        }
        Xoshiro256 { s }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u8..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
