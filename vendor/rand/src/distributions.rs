//! Distributions (`Standard` subset).

use crate::RngCore;

/// A distribution over values of `T` (subset of `rand::distributions`).
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution for primitive types.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Highest bit, as in rand 0.8.
        (rng.next_u32() >> 31) == 1
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
