//! Named generators (`StdRng` stand-in).

use crate::{RngCore, SeedableRng, Xoshiro256};

/// Stand-in for `rand::rngs::StdRng`: deterministic from its seed, but the
/// stream is xoshiro256++, not ChaCha12 — adequate for every seeded use in
/// this workspace.
#[derive(Clone, Debug)]
pub struct StdRng {
    core: Xoshiro256,
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng { core: Xoshiro256::from_seed_bytes(seed) }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.core.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.core.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}
