//! Offline stand-in for `criterion`.
//!
//! The real crate is unavailable without network access, so this shim keeps
//! the `[[bench]]` targets compiling (and `cargo test` green, which builds
//! them). It implements the API subset the workspace benches use:
//! `Criterion::benchmark_group` / `bench_function`, `BenchmarkGroup::
//! bench_with_input` / `finish`, `BenchmarkId`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Running a bench binary executes each benchmark body **once** and prints a
//! single wall-time line per benchmark — a smoke check and a coarse timing
//! signal, not a statistical measurement.

use std::time::Instant;

/// Discourages the optimizer from deleting a value (best-effort without
/// unstable intrinsics, same trick criterion itself uses on stable).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { repr: format!("{}/{}", name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { repr: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Passed to benchmark closures; `iter` runs the routine once and times it.
pub struct Bencher {
    label: String,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        let elapsed = start.elapsed();
        println!("bench {:<60} {:>12.3?} (single pass)", self.label, elapsed);
    }
}

/// Top-level driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { label: name.into() };
        f(&mut b);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { label: format!("{}/{}", self.name, id) };
        f(&mut b, input);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { label: format!("{}/{}", self.name, id) };
        f(&mut b);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

/// Throughput annotation (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
